#ifndef SVC_VIEW_VIEW_H_
#define SVC_VIEW_VIEW_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/executor.h"

namespace svc {

/// How a view can be maintained.
enum class ViewClass {
  /// Select-project-join view: rows are maintained individually by derived
  /// primary key.
  kSpj,
  /// Top-level group-by aggregate over an arbitrary sub-expression:
  /// maintained with the change-table (delta view) method.
  kAggregate,
  /// Anything else (set operations or non-incremental aggregates at the
  /// top): maintained by recomputation over the new base state. SVC can
  /// still sample such views by pushing η into the recompute expression.
  kRecomputeOnly,
};

/// Role of one column of the *stored* (maintenance) schema of a view. The
/// stored schema carries the user-visible output columns plus hidden
/// bookkeeping columns ("__support" group multiplicity, and "__sum_x" /
/// "__cnt_x" pairs backing incremental avg).
enum class StoredColKind {
  kGroupKey,    ///< aggregate-view group-by column (part of the pk)
  kSumMerge,    ///< sum(): merged additively
  kCountMerge,  ///< count()/count(*): merged additively
  kAvgVisible,  ///< avg(): recomputed from its hidden sum/cnt columns
  kHiddenSum,   ///< hidden sum backing an avg
  kHiddenCnt,   ///< hidden count backing an avg
  kMinMerge,    ///< min(): merged with least(); insert-only deltas
  kMaxMerge,    ///< max(): merged with greatest(); insert-only deltas
  kSupport,     ///< hidden group multiplicity; rows leave the view at 0
  kSpjKey,      ///< SPJ view primary-key column
  kSpjValue,    ///< SPJ view non-key column
};

/// Metadata for one stored column.
struct StoredCol {
  std::string name;       ///< canonical (unique, unqualified) stored name
  StoredColKind kind = StoredColKind::kSpjValue;
  /// For aggregate columns: the aggregate's input expression in the space
  /// of the aggregate's child (null for count(*)).
  ExprPtr source_expr;
  /// For kAvgVisible: stored-schema names of the backing hidden columns.
  std::string hidden_sum_name;
  std::string hidden_cnt_name;
};

/// A materialized view: a named definition plus a materialized table that
/// lives in the owning Database's catalog under the view's name. The
/// stored table uses the *maintenance schema* (visible columns under
/// canonical names + hidden bookkeeping columns) and is indexed by the
/// view's derived primary key (Definition 2).
class MaterializedView {
 public:
  /// Validates `definition` (primary key must be derivable), builds the
  /// augmented maintenance plan, materializes it against the current state
  /// of `*db`, and registers the result under `name`.
  ///
  /// `sampling_key` optionally overrides the attributes hashed by η (stored
  /// column names); it defaults to the view's primary key. A non-key
  /// sampling attribute (§12.5 of the paper, e.g. the join key of a
  /// fact-dimension join view) still yields uniform row sampling and
  /// usually pushes further down the maintenance plan.
  /// `exec` controls executor parallelism for the initial materialization
  /// (the stored table is identical at any thread count).
  static Result<MaterializedView> Create(
      std::string name, PlanPtr definition, Database* db,
      std::vector<std::string> sampling_key = {}, ExecOptions exec = {});

  const std::string& name() const { return name_; }
  /// The original user definition.
  const PlanPtr& definition() const { return definition_; }
  /// The augmented plan: definition + hidden maintenance columns, output
  /// renamed to the canonical stored schema.
  const PlanPtr& augmented_plan() const { return augmented_; }
  ViewClass view_class() const { return class_; }
  /// Stored-schema layout (one entry per stored column, in order).
  const std::vector<StoredCol>& stored_cols() const { return stored_cols_; }
  /// Stored-schema names of the primary key.
  const std::vector<std::string>& stored_pk() const { return stored_pk_; }
  /// Stored-schema names of the sampling key.
  const std::vector<std::string>& sampling_key() const {
    return sampling_key_;
  }
  /// The sampling key expressed as references into the definition space:
  /// for aggregate views, references valid in the schema of the aggregate's
  /// child; for SPJ/recompute views, references valid in the definition's
  /// output schema.
  const std::vector<std::string>& sampling_key_def() const {
    return sampling_key_def_;
  }
  /// For aggregate views: the group-by references (child space).
  const std::vector<std::string>& group_by() const { return group_by_; }
  /// For SPJ/recompute views: the derived pk in definition space.
  const std::vector<std::string>& def_pk() const { return def_pk_; }
  /// Base relations the view reads.
  const std::vector<std::string>& base_relations() const {
    return base_relations_;
  }
  /// True iff any stored column is a min/max merge (these block the
  /// change-table method when deletions are present).
  bool has_minmax() const { return has_minmax_; }

  /// The view's stored table inside `db`.
  Result<const Table*> data(const Database& db) const {
    return db.GetTable(name_);
  }

  /// Names of the user-visible (non-hidden) stored columns.
  std::vector<std::string> VisibleColumns() const;

 private:
  MaterializedView() = default;

  std::string name_;
  PlanPtr definition_;
  PlanPtr augmented_;
  ViewClass class_ = ViewClass::kSpj;
  std::vector<StoredCol> stored_cols_;
  std::vector<std::string> stored_pk_;
  std::vector<std::string> sampling_key_;
  std::vector<std::string> sampling_key_def_;
  std::vector<std::string> group_by_;
  std::vector<std::string> def_pk_;
  std::vector<std::string> base_relations_;
  bool has_minmax_ = false;
};

/// Collects the names of base relations scanned by `plan`.
void CollectBaseRelations(const PlanNode& plan, std::vector<std::string>* out);

}  // namespace svc

#endif  // SVC_VIEW_VIEW_H_
