#ifndef SVC_VIEW_STALENESS_H_
#define SVC_VIEW_STALENESS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace svc {

/// The three kinds of data error a stale view exhibits (§3.1 "Staleness as
/// Data Error"), measured against the up-to-date view by primary key.
struct StalenessReport {
  size_t incorrect = 0;    ///< key in both, row contents differ
  size_t missing = 0;      ///< key only in the up-to-date view
  size_t superfluous = 0;  ///< key only in the stale view
  size_t unchanged = 0;    ///< key in both, identical rows

  size_t TotalErrors() const { return incorrect + missing + superfluous; }
  std::string ToString() const;
};

/// Classifies every row of `stale` vs `fresh`. Both tables must share a
/// schema and have the same primary key declared. Rows are matched by
/// encoded primary key; `compare_columns` optionally restricts the
/// incorrect/unchanged content comparison to a subset of columns (by
/// reference name) — e.g. to ignore hidden bookkeeping columns.
Result<StalenessReport> ClassifyStaleness(
    const Table& stale, const Table& fresh,
    const std::vector<std::string>& compare_columns = {});

}  // namespace svc

#endif  // SVC_VIEW_STALENESS_H_
