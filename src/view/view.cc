#include "view/view.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "relational/executor.h"
#include "relational/keys.h"

namespace svc {

namespace {

bool IsSpjKind(PlanKind k) {
  return k == PlanKind::kScan || k == PlanKind::kSelect ||
         k == PlanKind::kProject || k == PlanKind::kJoin;
}

bool SubtreeIsSpj(const PlanNode& n) {
  if (!IsSpjKind(n.kind())) return false;
  for (const auto& c : n.children()) {
    if (!SubtreeIsSpj(*c)) return false;
  }
  return true;
}

bool IncrementalAggFunc(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
    case AggFunc::kCount:
    case AggFunc::kCountStar:
    case AggFunc::kAvg:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return true;
    default:
      return false;
  }
}

/// Assigns unique, unqualified storage names: prefers the bare column name,
/// falls back to "qualifier_name", then appends a counter.
std::vector<std::string> CanonicalNames(const Schema& schema) {
  std::vector<std::string> names;
  std::set<std::string> used;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    const Column& c = schema.column(i);
    std::string candidate = c.name;
    if (used.count(candidate) && !c.qualifier.empty()) {
      candidate = c.qualifier + "_" + c.name;
    }
    int suffix = 2;
    std::string chosen = candidate;
    while (used.count(chosen)) {
      chosen = candidate + "_" + std::to_string(suffix++);
    }
    used.insert(chosen);
    names.push_back(std::move(chosen));
  }
  return names;
}

}  // namespace

void CollectBaseRelations(const PlanNode& plan,
                          std::vector<std::string>* out) {
  if (plan.kind() == PlanKind::kScan) {
    if (std::find(out->begin(), out->end(), plan.table_name()) == out->end()) {
      out->push_back(plan.table_name());
    }
  }
  for (const auto& c : plan.children()) CollectBaseRelations(*c, out);
}

Result<MaterializedView> MaterializedView::Create(
    std::string name, PlanPtr definition, Database* db,
    std::vector<std::string> sampling_key, ExecOptions exec) {
  if (db->HasTable(name)) {
    return Status::AlreadyExists("a table or view named '" + name +
                                 "' already exists");
  }
  MaterializedView mv;
  mv.name_ = std::move(name);
  mv.definition_ = definition->Clone();
  CollectBaseRelations(*mv.definition_, &mv.base_relations_);

  // Derive the primary key of every node (Definition 2). Views without a
  // derivable key cannot be sampled and are rejected.
  PlanPtr def = mv.definition_->Clone();
  SVC_ASSIGN_OR_RETURN(std::vector<std::string> def_pk,
                       DerivePrimaryKeys(def.get(), *db));
  mv.def_pk_ = def_pk;
  SVC_ASSIGN_OR_RETURN(Schema def_schema, ComputeSchema(*def, *db));

  // Classify.
  const bool top_is_incremental_agg =
      def->kind() == PlanKind::kAggregate && !def->group_by().empty() &&
      std::all_of(def->aggregates().begin(), def->aggregates().end(),
                  [](const AggItem& a) { return IncrementalAggFunc(a.func); });
  if (top_is_incremental_agg) {
    mv.class_ = ViewClass::kAggregate;
  } else if (SubtreeIsSpj(*def)) {
    mv.class_ = ViewClass::kSpj;
  } else {
    mv.class_ = ViewClass::kRecomputeOnly;
  }

  // Build the augmented plan + stored-column layout.
  if (mv.class_ == ViewClass::kAggregate) {
    mv.group_by_ = def->group_by();
    const size_t n_groups = mv.group_by_.size();

    // Augmented aggregate: original aggregates, hidden avg backing
    // aggregates, and the group support count.
    std::vector<AggItem> aug_aggs;
    for (const auto& a : def->aggregates()) {
      aug_aggs.push_back({a.func, a.input ? a.input->Clone() : nullptr,
                          a.alias});
    }
    std::vector<std::pair<std::string, std::string>> avg_hidden;  // sum,cnt
    for (const auto& a : def->aggregates()) {
      if (a.func == AggFunc::kAvg) {
        std::string hs = "__sum_" + a.alias;
        std::string hc = "__cnt_" + a.alias;
        aug_aggs.push_back({AggFunc::kSum, a.input->Clone(), hs});
        aug_aggs.push_back({AggFunc::kCount, a.input->Clone(), hc});
        avg_hidden.emplace_back(hs, hc);
      }
    }
    aug_aggs.push_back({AggFunc::kCountStar, nullptr, "__support"});

    PlanPtr agg = PlanNode::Aggregate(def->child(0)->Clone(), mv.group_by_,
                                      aug_aggs);
    SVC_ASSIGN_OR_RETURN(Schema agg_schema, ComputeSchema(*agg, *db));

    // Canonical stored names: dedup group column names; aggregate aliases
    // are used as-is (must be unique).
    std::vector<std::string> names = CanonicalNames(agg_schema);
    std::vector<ProjectItem> rename;
    for (size_t i = 0; i < agg_schema.NumColumns(); ++i) {
      rename.push_back(
          {names[i], Expr::Col(agg_schema.column(i).FullName()), ""});
    }
    mv.augmented_ = PlanNode::Project(agg, std::move(rename));

    // Stored layout.
    size_t avg_seen = 0;
    for (size_t i = 0; i < n_groups; ++i) {
      mv.stored_cols_.push_back({names[i], StoredColKind::kGroupKey, nullptr,
                                 "", ""});
      mv.stored_pk_.push_back(names[i]);
    }
    const auto& original = def->aggregates();
    for (size_t j = 0; j < original.size(); ++j) {
      const AggItem& a = original[j];
      StoredCol sc;
      sc.name = names[n_groups + j];
      sc.source_expr = a.input ? a.input->Clone() : nullptr;
      switch (a.func) {
        case AggFunc::kSum: sc.kind = StoredColKind::kSumMerge; break;
        case AggFunc::kCount:
        case AggFunc::kCountStar: sc.kind = StoredColKind::kCountMerge; break;
        case AggFunc::kAvg:
          sc.kind = StoredColKind::kAvgVisible;
          sc.hidden_sum_name = avg_hidden[avg_seen].first;
          sc.hidden_cnt_name = avg_hidden[avg_seen].second;
          ++avg_seen;
          break;
        case AggFunc::kMin:
          sc.kind = StoredColKind::kMinMerge;
          mv.has_minmax_ = true;
          break;
        case AggFunc::kMax:
          sc.kind = StoredColKind::kMaxMerge;
          mv.has_minmax_ = true;
          break;
        default:
          return Status::Internal("unexpected aggregate func");
      }
      mv.stored_cols_.push_back(std::move(sc));
    }
    size_t agg_pos = original.size();       // index into aug_aggs
    size_t name_pos = n_groups + original.size();  // index into names
    for (const auto& [hs, hc] : avg_hidden) {
      mv.stored_cols_.push_back({names[name_pos++],
                                 StoredColKind::kHiddenSum,
                                 aug_aggs[agg_pos++].input->Clone(), "", ""});
      mv.stored_cols_.push_back({names[name_pos++],
                                 StoredColKind::kHiddenCnt,
                                 aug_aggs[agg_pos++].input->Clone(), "", ""});
      (void)hs;
      (void)hc;
    }
    mv.stored_cols_.push_back({names[name_pos], StoredColKind::kSupport,
                               nullptr, "", ""});
  } else {
    // SPJ and recompute-only views share the same augmented shape:
    // canonicalize names and append a literal support column.
    std::vector<std::string> names = CanonicalNames(def_schema);
    std::vector<ProjectItem> items;
    SVC_ASSIGN_OR_RETURN(std::vector<size_t> pk_pos,
                         def_schema.ResolveAll(def_pk));
    std::set<size_t> pk_set(pk_pos.begin(), pk_pos.end());
    for (size_t i = 0; i < def_schema.NumColumns(); ++i) {
      items.push_back(
          {names[i], Expr::Col(def_schema.column(i).FullName()), ""});
      StoredCol sc;
      sc.name = names[i];
      sc.kind = pk_set.count(i) ? StoredColKind::kSpjKey
                                : StoredColKind::kSpjValue;
      mv.stored_cols_.push_back(std::move(sc));
      if (pk_set.count(i)) mv.stored_pk_.push_back(names[i]);
    }
    items.push_back({"__support", Expr::LitInt(1), ""});
    mv.stored_cols_.push_back({"__support", StoredColKind::kSupport, nullptr,
                               "", ""});
    mv.augmented_ = PlanNode::Project(def, std::move(items));
  }

  // Sampling key: default to the primary key; otherwise validate the given
  // stored names are a subset of the stored schema.
  if (sampling_key.empty()) {
    mv.sampling_key_ = mv.stored_pk_;
  } else {
    for (const auto& k : sampling_key) {
      if (std::none_of(mv.stored_cols_.begin(), mv.stored_cols_.end(),
                       [&](const StoredCol& c) { return c.name == k; })) {
        return Status::InvalidArgument("sampling key column '" + k +
                                       "' is not a stored view column");
      }
    }
    mv.sampling_key_ = std::move(sampling_key);
  }

  // Map the sampling key into definition space. For aggregate views stored
  // column i < |group_by| corresponds to group_by[i] in the child's schema;
  // for SPJ / recompute views stored column i corresponds to output column
  // i of the definition.
  for (const auto& k : mv.sampling_key_) {
    size_t pos = 0;
    for (; pos < mv.stored_cols_.size(); ++pos) {
      if (mv.stored_cols_[pos].name == k) break;
    }
    if (mv.class_ == ViewClass::kAggregate) {
      if (pos >= mv.group_by_.size()) {
        return Status::InvalidArgument(
            "sampling key of an aggregate view must be group-by columns: " +
            k);
      }
      mv.sampling_key_def_.push_back(mv.group_by_[pos]);
    } else {
      SVC_ASSIGN_OR_RETURN(Schema ds, ComputeSchema(*mv.definition_, *db));
      mv.sampling_key_def_.push_back(ds.column(pos).FullName());
    }
  }

  // Materialize.
  SVC_ASSIGN_OR_RETURN(Table data, ExecutePlan(*mv.augmented_, *db, exec));
  SVC_RETURN_IF_ERROR(data.SetPrimaryKey(mv.stored_pk_));
  SVC_RETURN_IF_ERROR(db->CreateTable(mv.name_, std::move(data)));
  return mv;
}

std::vector<std::string> MaterializedView::VisibleColumns() const {
  std::vector<std::string> out;
  for (const auto& c : stored_cols_) {
    if (c.name.rfind("__", 0) != 0) out.push_back(c.name);
  }
  return out;
}

}  // namespace svc
