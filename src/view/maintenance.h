#ifndef SVC_VIEW_MAINTENANCE_H_
#define SVC_VIEW_MAINTENANCE_H_

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/executor.h"
#include "view/delta.h"
#include "view/view.h"

namespace svc {

/// How a maintenance plan brings the view up to date.
enum class MaintenanceKind {
  kNoOp,         ///< no pending delta touches the view
  kChangeTable,  ///< change-table (delta view) incremental maintenance
  kRecompute,    ///< full recomputation over the new base state
};

/// The maintenance strategy M (§3.1): a relational expression which, when
/// executed against {stale view, base relations, delta relations},
/// materializes the up-to-date view S'. For kChangeTable the expression has
/// the fixed shape
///
///     σ_{__support > 0}( Π_merge( Scan(view) ⟗_pk  ChangeTable ) )
///
/// and `merge_join` points at the full outer join inside `plan` so that the
/// SVC cleaner can splice the sampling operator η onto both branches
/// (Figure 3 of the paper).
struct MaintenancePlan {
  MaintenanceKind kind = MaintenanceKind::kNoOp;
  PlanPtr plan;        // null for kNoOp
  PlanPtr merge_join;  // the ⟗ node (kChangeTable only)
};

/// Rewrites `plan` so that every scan of a base relation with pending
/// deltas reads the *new* state: R' = (R − ∇R) ∪ ΔR. The delta relations
/// must be registered in the catalog (DeltaSet::Register).
PlanPtr RewriteToNewState(const PlanNode& plan, const DeltaSet& deltas);

/// Derives the signed delta stream d(subtree): a plan producing the
/// subtree's schema plus two columns, `__sign` (+1 inserted / −1 deleted)
/// and `__term` (a lineage tag keeping rows from different derivation terms
/// distinct under set semantics). Uses the multilinear join expansion
///     d(E1 ⋈ E2) = dE1 ⋈ E2 + E1 ⋈ dE2 + dE1 ⋈ dE2
/// for inner equi-joins, linear rules for σ/Π, and a generic
/// new-minus-old difference for non-linear operators (aggregates, set
/// operations, outer joins) — the case where incremental maintenance
/// degenerates toward recomputation, as the paper observes for V21/V22.
///
/// Returns a null PlanPtr when no base relation under `subtree` has
/// pending changes.
Result<PlanPtr> DeriveDeltaStream(const PlanNode& subtree,
                                  const DeltaSet& deltas, const Database& db,
                                  int* site_counter);

/// Builds the full-recompute maintenance plan (the augmented view plan over
/// the new base state).
Result<PlanPtr> BuildRecomputePlan(const MaterializedView& view,
                                   const DeltaSet& deltas);

/// Builds the maintenance strategy M for `view` given the pending deltas
/// (already registered in `db`). Chooses change-table maintenance when the
/// view class supports it, falling back to recomputation for
/// kRecomputeOnly views and for min/max views facing deletions.
Result<MaintenancePlan> BuildMaintenancePlan(const MaterializedView& view,
                                             const DeltaSet& deltas,
                                             const Database& db);

/// Executes a maintenance plan and replaces the view's stored table.
/// kNoOp plans succeed without touching anything. `exec` controls the
/// executor's parallelism (the maintained table is identical at any
/// thread count).
Status ApplyMaintenance(const MaterializedView& view,
                        const MaintenancePlan& plan, Database* db,
                        ExecOptions exec = {});

}  // namespace svc

#endif  // SVC_VIEW_MAINTENANCE_H_
