#include "view/maintenance.h"

#include <set>

#include "relational/executor.h"

namespace svc {

namespace {

constexpr char kOldAlias[] = "__old";

/// Pass-through items for every column of `schema`.
std::vector<ProjectItem> PassThroughAll(const Schema& schema) {
  std::vector<ProjectItem> items;
  items.reserve(schema.NumColumns());
  for (const auto& c : schema.columns()) items.push_back(PassThroughItem(c));
  return items;
}

/// Appends the signed-delta bookkeeping columns to `items`.
void AppendSignTerm(std::vector<ProjectItem>* items, ExprPtr sign,
                    ExprPtr term) {
  items->push_back({"__sign", std::move(sign), ""});
  items->push_back({"__term", std::move(term), ""});
}

std::string FreshSite(int* site_counter) {
  return "s" + std::to_string((*site_counter)++);
}

/// Generic non-linear delta: (new − old) with sign +1 union (old − new)
/// with sign −1. Exact for operators whose output is a set of
/// key-identified rows.
Result<PlanPtr> GenericDiff(const PlanNode& node, const DeltaSet& deltas,
                            const Database& db, int* site_counter) {
  SVC_ASSIGN_OR_RETURN(Schema schema, ComputeSchema(node, db));
  PlanPtr old_plan = node.Clone();
  PlanPtr new_plan = RewriteToNewState(node, deltas);

  auto side = [&](PlanPtr big, PlanPtr small, int64_t sign) {
    std::vector<ProjectItem> items = PassThroughAll(schema);
    AppendSignTerm(&items, Expr::LitInt(sign),
                   Expr::LitString(FreshSite(site_counter)));
    return PlanNode::Project(
        PlanNode::Difference(std::move(big), std::move(small)),
        std::move(items));
  };
  PlanPtr plus = side(new_plan->Clone(), old_plan->Clone(), 1);
  PlanPtr minus = side(std::move(old_plan), std::move(new_plan), -1);
  return PlanNode::Union(std::move(plus), std::move(minus));
}

/// Does any base relation under `node` have pending deltas?
bool SubtreeTouched(const PlanNode& node, const DeltaSet& deltas) {
  std::vector<std::string> rels;
  CollectBaseRelations(node, &rels);
  for (const auto& r : rels) {
    if (deltas.Touches(r)) return true;
  }
  return false;
}

}  // namespace

PlanPtr RewriteToNewState(const PlanNode& plan, const DeltaSet& deltas) {
  if (plan.kind() == PlanKind::kScan) {
    const std::string& rel = plan.table_name();
    if (!deltas.Touches(rel)) return plan.Clone();
    PlanPtr cur = PlanNode::Scan(rel, plan.alias());
    // The pending queue may be chunked (CoW DeltaSet); chaining one
    // set-difference / union per chunk reads the same row sequence as a
    // single consolidated table, so the output is chunking-independent.
    for (const std::string& name : deltas.DeleteTableNames(rel)) {
      cur = PlanNode::Difference(std::move(cur),
                                 PlanNode::Scan(name, plan.alias()));
    }
    for (const std::string& name : deltas.InsertTableNames(rel)) {
      cur = PlanNode::Union(std::move(cur),
                            PlanNode::Scan(name, plan.alias()));
    }
    return cur;
  }
  PlanPtr n = plan.Clone();
  for (size_t i = 0; i < n->children().size(); ++i) {
    n->set_child(i, RewriteToNewState(*n->child(i), deltas));
  }
  return n;
}

Result<PlanPtr> DeriveDeltaStream(const PlanNode& subtree,
                                  const DeltaSet& deltas, const Database& db,
                                  int* site_counter) {
  switch (subtree.kind()) {
    case PlanKind::kScan: {
      const std::string& rel = subtree.table_name();
      if (!deltas.Touches(rel)) return PlanPtr(nullptr);
      SVC_ASSIGN_OR_RETURN(Schema schema, ComputeSchema(subtree, db));
      auto delta_side = [&](const std::string& table, int64_t sign) {
        std::vector<ProjectItem> items = PassThroughAll(schema);
        AppendSignTerm(&items, Expr::LitInt(sign),
                       Expr::LitString(FreshSite(site_counter)));
        return PlanNode::Project(PlanNode::Scan(table, subtree.alias()),
                                 std::move(items));
      };
      // One signed projection per delta chunk, each with its own lineage
      // site so rows from different chunks stay distinct under the set
      // semantics of the unions above this stream.
      PlanPtr stream;
      auto append = [&](PlanPtr next) {
        stream = stream ? PlanNode::Union(std::move(stream), std::move(next))
                        : std::move(next);
      };
      for (const std::string& name : deltas.InsertTableNames(rel)) {
        append(delta_side(name, 1));
      }
      for (const std::string& name : deltas.DeleteTableNames(rel)) {
        append(delta_side(name, -1));
      }
      return stream;
    }
    case PlanKind::kSelect: {
      SVC_ASSIGN_OR_RETURN(
          PlanPtr d,
          DeriveDeltaStream(*subtree.child(0), deltas, db, site_counter));
      if (!d) return PlanPtr(nullptr);
      return PlanNode::Select(std::move(d), subtree.predicate()->Clone());
    }
    case PlanKind::kProject: {
      SVC_ASSIGN_OR_RETURN(
          PlanPtr d,
          DeriveDeltaStream(*subtree.child(0), deltas, db, site_counter));
      if (!d) return PlanPtr(nullptr);
      std::vector<ProjectItem> items;
      for (const auto& it : subtree.project_items()) {
        items.push_back({it.alias, it.expr->Clone(), it.out_qualifier});
      }
      AppendSignTerm(&items, Expr::Col("__sign"), Expr::Col("__term"));
      return PlanNode::Project(std::move(d), std::move(items));
    }
    case PlanKind::kJoin: {
      if (subtree.join_type() != JoinType::kInner) {
        // Outer joins are not multilinear; fall back to the generic diff.
        if (!SubtreeTouched(subtree, deltas)) return PlanPtr(nullptr);
        return GenericDiff(subtree, deltas, db, site_counter);
      }
      SVC_ASSIGN_OR_RETURN(
          PlanPtr dl,
          DeriveDeltaStream(*subtree.child(0), deltas, db, site_counter));
      SVC_ASSIGN_OR_RETURN(
          PlanPtr dr,
          DeriveDeltaStream(*subtree.child(1), deltas, db, site_counter));
      if (!dl && !dr) return PlanPtr(nullptr);
      SVC_ASSIGN_OR_RETURN(Schema ls, ComputeSchema(*subtree.child(0), db));
      SVC_ASSIGN_OR_RETURN(Schema rs, ComputeSchema(*subtree.child(1), db));

      auto residual = [&]() -> ExprPtr {
        return subtree.join_residual() ? subtree.join_residual()->Clone()
                                       : nullptr;
      };

      std::vector<PlanPtr> terms;
      // d(E1 ⋈ E2) = dE1 ⋈ E2 + E1 ⋈ dE2 + dE1 ⋈ dE2, signs multiply.
      if (dl) {
        PlanPtr j = PlanNode::Join(dl->Clone(), subtree.child(1)->Clone(),
                                   JoinType::kInner, subtree.join_keys(),
                                   residual(), subtree.fk_right());
        std::vector<ProjectItem> items = PassThroughAll(ls);
        for (const auto& c : rs.columns()) items.push_back(PassThroughItem(c));
        AppendSignTerm(&items, Expr::Col("__sign"),
                       Expr::Func("concat", {Expr::Col("__term"),
                                             Expr::LitString(
                                                 FreshSite(site_counter))}));
        terms.push_back(PlanNode::Project(std::move(j), std::move(items)));
      }
      if (dr) {
        PlanPtr j = PlanNode::Join(subtree.child(0)->Clone(), dr->Clone(),
                                   JoinType::kInner, subtree.join_keys(),
                                   residual(), subtree.fk_right());
        std::vector<ProjectItem> items = PassThroughAll(ls);
        for (const auto& c : rs.columns()) items.push_back(PassThroughItem(c));
        AppendSignTerm(&items, Expr::Col("__sign"),
                       Expr::Func("concat", {Expr::Col("__term"),
                                             Expr::LitString(
                                                 FreshSite(site_counter))}));
        terms.push_back(PlanNode::Project(std::move(j), std::move(items)));
      }
      if (dl && dr) {
        // Rename the bookkeeping columns on each side to avoid ambiguity.
        auto rename = [&](PlanPtr d, const Schema& s, const char* sn,
                          const char* tn) {
          std::vector<ProjectItem> items = PassThroughAll(s);
          items.push_back({sn, Expr::Col("__sign"), ""});
          items.push_back({tn, Expr::Col("__term"), ""});
          return PlanNode::Project(std::move(d), std::move(items));
        };
        PlanPtr l2 = rename(std::move(dl), ls, "__s1", "__t1");
        PlanPtr r2 = rename(std::move(dr), rs, "__s2", "__t2");
        PlanPtr j = PlanNode::Join(std::move(l2), std::move(r2),
                                   JoinType::kInner, subtree.join_keys(),
                                   residual(), subtree.fk_right());
        std::vector<ProjectItem> items = PassThroughAll(ls);
        for (const auto& c : rs.columns()) items.push_back(PassThroughItem(c));
        AppendSignTerm(
            &items, Expr::Mul(Expr::Col("__s1"), Expr::Col("__s2")),
            Expr::Func("concat",
                       {Expr::Col("__t1"), Expr::LitString("*"),
                        Expr::Col("__t2"),
                        Expr::LitString(FreshSite(site_counter))}));
        terms.push_back(PlanNode::Project(std::move(j), std::move(items)));
      }
      PlanPtr stream = terms[0];
      for (size_t i = 1; i < terms.size(); ++i) {
        stream = PlanNode::Union(std::move(stream), std::move(terms[i]));
      }
      return stream;
    }
    case PlanKind::kAggregate:
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference:
    case PlanKind::kHashFilter: {
      if (!SubtreeTouched(subtree, deltas)) return PlanPtr(nullptr);
      return GenericDiff(subtree, deltas, db, site_counter);
    }
  }
  return Status::Internal("unreachable plan kind");
}

Result<PlanPtr> BuildRecomputePlan(const MaterializedView& view,
                                   const DeltaSet& deltas) {
  return RewriteToNewState(*view.augmented_plan(), deltas);
}

namespace {

constexpr char kCtAlias[] = "__ct";

/// Wraps `node` in a projection that renames output column i to
/// `aliases[i]` under the `__ct` qualifier, so change-table columns can be
/// referenced unambiguously next to the "__old" view scan in the merge
/// join.
Result<PlanPtr> QualifyChangeTable(PlanPtr node, const Database& db,
                                   const std::vector<std::string>& aliases) {
  SVC_ASSIGN_OR_RETURN(Schema schema, ComputeSchema(*node, db));
  std::vector<ProjectItem> items;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    items.push_back({aliases[i], Expr::Col(schema.column(i).FullName()),
                     kCtAlias});
  }
  return PlanNode::Project(std::move(node), std::move(items));
}

std::string CtCol(const std::string& name) {
  return std::string(kCtAlias) + "." + name;
}

/// Builds the change table for an aggregate-class view: the view's signed
/// aggregates over the delta stream of the aggregate's child.
Result<PlanPtr> BuildAggregateChangeTable(const MaterializedView& view,
                                          PlanPtr delta_stream) {
  std::vector<AggItem> ct_aggs;
  const ExprPtr sign = Expr::Col("__sign");
  for (const auto& sc : view.stored_cols()) {
    switch (sc.kind) {
      case StoredColKind::kGroupKey:
      case StoredColKind::kAvgVisible:
      case StoredColKind::kSpjKey:
      case StoredColKind::kSpjValue:
        break;  // no delta column
      case StoredColKind::kSumMerge:
      case StoredColKind::kHiddenSum:
        ct_aggs.push_back({AggFunc::kSum,
                           Expr::Mul(sign->Clone(), sc.source_expr->Clone()),
                           "d_" + sc.name});
        break;
      case StoredColKind::kCountMerge:
      case StoredColKind::kHiddenCnt: {
        ExprPtr input;
        if (sc.source_expr) {
          // count(x): count only non-null x, signed.
          input = Expr::Func(
              "if", {Expr::Unary(UnaryOp::kIsNull, sc.source_expr->Clone()),
                     Expr::LitInt(0), sign->Clone()});
        } else {
          input = sign->Clone();
        }
        ct_aggs.push_back({AggFunc::kSum, std::move(input), "d_" + sc.name});
        break;
      }
      case StoredColKind::kMinMerge:
        ct_aggs.push_back(
            {AggFunc::kMin,
             Expr::Func("if", {Expr::Gt(sign->Clone(), Expr::LitInt(0)),
                               sc.source_expr->Clone(),
                               Expr::Lit(Value::Null())}),
             "d_" + sc.name});
        break;
      case StoredColKind::kMaxMerge:
        ct_aggs.push_back(
            {AggFunc::kMax,
             Expr::Func("if", {Expr::Gt(sign->Clone(), Expr::LitInt(0)),
                               sc.source_expr->Clone(),
                               Expr::Lit(Value::Null())}),
             "d_" + sc.name});
        break;
      case StoredColKind::kSupport:
        ct_aggs.push_back({AggFunc::kSum, sign->Clone(), "d___support"});
        break;
    }
  }
  return PlanNode::Aggregate(std::move(delta_stream), view.group_by(),
                             std::move(ct_aggs));
}

Result<MaintenancePlan> BuildAggregateMergePlan(const MaterializedView& view,
                                                PlanPtr ct,
                                                const Database& db) {
  const size_t n_groups = view.group_by().size();
  {
    SVC_ASSIGN_OR_RETURN(Schema ct_schema, ComputeSchema(*ct, db));
    std::vector<std::string> aliases;
    for (size_t i = 0; i < ct_schema.NumColumns(); ++i) {
      aliases.push_back(i < n_groups ? "g" + std::to_string(i)
                                     : ct_schema.column(i).name);
    }
    SVC_ASSIGN_OR_RETURN(ct, QualifyChangeTable(std::move(ct), db, aliases));
  }
  PlanPtr view_scan = PlanNode::Scan(view.name(), kOldAlias);

  std::vector<JoinKeyPair> keys;
  for (size_t i = 0; i < n_groups; ++i) {
    keys.push_back({std::string(kOldAlias) + "." + view.stored_cols()[i].name,
                    CtCol("g" + std::to_string(i))});
  }
  PlanPtr foj =
      PlanNode::Join(view_scan, std::move(ct), JoinType::kFull, keys);

  auto old_col = [&](const std::string& name) {
    return Expr::Col(std::string(kOldAlias) + "." + name);
  };
  std::vector<ProjectItem> items;
  size_t group_i = 0;
  for (const auto& sc : view.stored_cols()) {
    switch (sc.kind) {
      case StoredColKind::kGroupKey:
        items.push_back(
            {sc.name,
             Expr::Func("coalesce",
                        {old_col(sc.name),
                         Expr::Col(CtCol("g" + std::to_string(group_i)))}),
             ""});
        ++group_i;
        break;
      case StoredColKind::kSumMerge:
      case StoredColKind::kCountMerge:
      case StoredColKind::kHiddenSum:
      case StoredColKind::kHiddenCnt:
        items.push_back(
            {sc.name,
             Expr::Add(Expr::CoalesceZero(old_col(sc.name)),
                       Expr::CoalesceZero(Expr::Col(CtCol("d_" + sc.name)))),
             ""});
        break;
      case StoredColKind::kAvgVisible:
        items.push_back(
            {sc.name,
             Expr::Div(
                 Expr::Add(
                     Expr::CoalesceZero(old_col(sc.hidden_sum_name)),
                     Expr::CoalesceZero(
                         Expr::Col(CtCol("d_" + sc.hidden_sum_name)))),
                 Expr::Add(
                     Expr::CoalesceZero(old_col(sc.hidden_cnt_name)),
                     Expr::CoalesceZero(
                         Expr::Col(CtCol("d_" + sc.hidden_cnt_name))))),
             ""});
        break;
      case StoredColKind::kMinMerge:
        items.push_back(
            {sc.name,
             Expr::Func(
                 "coalesce",
                 {Expr::Func("least", {old_col(sc.name),
                                       Expr::Col(CtCol("d_" + sc.name))}),
                  old_col(sc.name), Expr::Col(CtCol("d_" + sc.name))}),
             ""});
        break;
      case StoredColKind::kMaxMerge:
        items.push_back(
            {sc.name,
             Expr::Func(
                 "coalesce",
                 {Expr::Func("greatest", {old_col(sc.name),
                                          Expr::Col(CtCol("d_" + sc.name))}),
                  old_col(sc.name), Expr::Col(CtCol("d_" + sc.name))}),
             ""});
        break;
      case StoredColKind::kSupport:
        items.push_back(
            {sc.name,
             Expr::Add(Expr::CoalesceZero(old_col(sc.name)),
                       Expr::CoalesceZero(Expr::Col(CtCol("d___support")))),
             ""});
        break;
      case StoredColKind::kSpjKey:
      case StoredColKind::kSpjValue:
        return Status::Internal("SPJ column in aggregate view");
    }
  }
  PlanPtr merged = PlanNode::Project(foj, std::move(items));
  PlanPtr m = PlanNode::Select(
      std::move(merged),
      Expr::Gt(Expr::Col("__support"), Expr::LitInt(0)));
  return MaintenancePlan{MaintenanceKind::kChangeTable, std::move(m), foj};
}

Result<MaintenancePlan> BuildSpjPlan(const MaterializedView& view,
                                     PlanPtr delta_stream,
                                     const Database& db) {
  SVC_ASSIGN_OR_RETURN(Schema def_schema,
                       ComputeSchema(*view.definition(), db));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> pk_pos,
                       def_schema.ResolveAll(view.def_pk()));
  std::set<size_t> pk_set(pk_pos.begin(), pk_pos.end());

  // Change table: per-pk net insert/delete counts plus the new value of
  // every non-key column (taken from the inserted side only).
  const ExprPtr sign = Expr::Col("__sign");
  std::vector<AggItem> ct_aggs;
  for (size_t i = 0; i < def_schema.NumColumns(); ++i) {
    if (pk_set.count(i)) continue;
    ct_aggs.push_back(
        {AggFunc::kMax,
         Expr::Func("if", {Expr::Gt(sign->Clone(), Expr::LitInt(0)),
                           Expr::Col(def_schema.column(i).FullName()),
                           Expr::Lit(Value::Null())}),
         "n_" + view.stored_cols()[i].name});
  }
  ct_aggs.push_back({AggFunc::kSum,
                     Expr::Func("if", {Expr::Gt(sign->Clone(), Expr::LitInt(0)),
                                       Expr::LitInt(1), Expr::LitInt(0)}),
                     "__d_ins"});
  ct_aggs.push_back({AggFunc::kSum,
                     Expr::Func("if", {Expr::Lt(sign->Clone(), Expr::LitInt(0)),
                                       Expr::LitInt(1), Expr::LitInt(0)}),
                     "__d_del"});
  PlanPtr ct = PlanNode::Aggregate(std::move(delta_stream), view.def_pk(),
                                   std::move(ct_aggs));
  {
    SVC_ASSIGN_OR_RETURN(Schema ct_schema, ComputeSchema(*ct, db));
    std::vector<std::string> aliases;
    for (size_t i = 0; i < ct_schema.NumColumns(); ++i) {
      aliases.push_back(i < pk_pos.size() ? "g" + std::to_string(i)
                                          : ct_schema.column(i).name);
    }
    SVC_ASSIGN_OR_RETURN(ct, QualifyChangeTable(std::move(ct), db, aliases));
  }

  PlanPtr view_scan = PlanNode::Scan(view.name(), kOldAlias);
  std::vector<JoinKeyPair> keys;
  for (size_t j = 0; j < pk_pos.size(); ++j) {
    keys.push_back(
        {std::string(kOldAlias) + "." + view.stored_cols()[pk_pos[j]].name,
         CtCol("g" + std::to_string(j))});
  }
  PlanPtr foj =
      PlanNode::Join(view_scan, std::move(ct), JoinType::kFull, keys);

  auto old_col = [&](const std::string& name) {
    return Expr::Col(std::string(kOldAlias) + "." + name);
  };
  const ExprPtr ins = Expr::CoalesceZero(Expr::Col(CtCol("__d_ins")));
  const ExprPtr del = Expr::CoalesceZero(Expr::Col(CtCol("__d_del")));

  std::vector<ProjectItem> items;
  for (size_t i = 0; i < def_schema.NumColumns(); ++i) {
    const StoredCol& sc = view.stored_cols()[i];
    if (pk_set.count(i)) {
      // Which change-table group column corresponds to this pk position?
      size_t j = 0;
      while (pk_pos[j] != i) ++j;
      items.push_back(
          {sc.name,
           Expr::Func("coalesce",
                      {old_col(sc.name),
                       Expr::Col(CtCol("g" + std::to_string(j)))}),
           ""});
    } else {
      items.push_back(
          {sc.name,
           Expr::Func("if",
                      {Expr::Gt(ins->Clone(), Expr::LitInt(0)),
                       Expr::Col(CtCol("n_" + sc.name)), old_col(sc.name)}),
           ""});
    }
  }
  items.push_back(
      {"__support",
       Expr::Sub(Expr::Add(Expr::Func("if",
                                      {Expr::Unary(UnaryOp::kIsNotNull,
                                                   old_col("__support")),
                                       Expr::LitInt(1), Expr::LitInt(0)}),
                           ins->Clone()),
                 del->Clone()),
       ""});
  PlanPtr merged = PlanNode::Project(foj, std::move(items));
  PlanPtr m = PlanNode::Select(
      std::move(merged),
      Expr::Gt(Expr::Col("__support"), Expr::LitInt(0)));
  return MaintenancePlan{MaintenanceKind::kChangeTable, std::move(m), foj};
}

}  // namespace

Result<MaintenancePlan> BuildMaintenancePlan(const MaterializedView& view,
                                             const DeltaSet& deltas,
                                             const Database& db) {
  bool touched = false;
  bool touched_deletes = false;
  for (const auto& rel : view.base_relations()) {
    touched = touched || deltas.Touches(rel);
    touched_deletes = touched_deletes || deltas.HasDeletes(rel);
  }
  if (!touched) return MaintenancePlan{};

  if (view.view_class() == ViewClass::kRecomputeOnly ||
      (view.has_minmax() && touched_deletes)) {
    SVC_ASSIGN_OR_RETURN(PlanPtr plan, BuildRecomputePlan(view, deltas));
    return MaintenancePlan{MaintenanceKind::kRecompute, std::move(plan),
                           nullptr};
  }

  int site_counter = 0;
  if (view.view_class() == ViewClass::kAggregate) {
    // augmented = Project(rename, Aggregate(child, ...)).
    const PlanNode& agg = *view.augmented_plan()->child(0);
    SVC_ASSIGN_OR_RETURN(
        PlanPtr de, DeriveDeltaStream(*agg.child(0), deltas, db,
                                      &site_counter));
    if (!de) return MaintenancePlan{};
    SVC_ASSIGN_OR_RETURN(PlanPtr ct,
                         BuildAggregateChangeTable(view, std::move(de)));
    return BuildAggregateMergePlan(view, std::move(ct), db);
  }

  // SPJ view.
  SVC_ASSIGN_OR_RETURN(
      PlanPtr de,
      DeriveDeltaStream(*view.definition(), deltas, db, &site_counter));
  if (!de) return MaintenancePlan{};
  return BuildSpjPlan(view, std::move(de), db);
}

Status ApplyMaintenance(const MaterializedView& view,
                        const MaintenancePlan& plan, Database* db,
                        ExecOptions exec) {
  if (plan.kind == MaintenanceKind::kNoOp) return Status::OK();
  SVC_ASSIGN_OR_RETURN(Table fresh, ExecutePlan(*plan.plan, *db, exec));
  SVC_RETURN_IF_ERROR(fresh.SetPrimaryKey(view.stored_pk()));
  db->PutTable(view.name(), std::move(fresh));
  return Status::OK();
}

}  // namespace svc
