#include "view/delta.h"

#include <algorithm>
#include <cstddef>
#include <set>

namespace svc {

std::string DeltaInsertName(const std::string& relation) {
  return "__ins_" + relation;
}

std::string DeltaDeleteName(const std::string& relation) {
  return "__del_" + relation;
}

std::string DeltaChunkName(const std::string& base, size_t chunk) {
  return base + "@" + std::to_string(chunk);
}

size_t DeltaSet::Side::rows() const {
  size_t n = tail.NumRows();
  for (const auto& c : chunks) n += c->NumRows();
  return n;
}

void DeltaSet::SealInto(const Side& from, Side* to) {
  to->chunks = from.chunks;
  if (!from.tail.empty()) {
    // Non-const construction: the catalog's GetMutableTable may clone-free
    // const_cast this object if it ever becomes the sole owner.
    to->chunks.push_back(std::make_shared<Table>(from.tail));
  }
  to->tail = Table(from.tail.schema());
  CompactChunks(&to->chunks);
}

void DeltaSet::CompactChunks(
    std::vector<std::shared_ptr<const Table>>* chunks) {
  size_t rows = 0;
  for (const auto& c : *chunks) rows += c->NumRows();
  if (rows == 0) return;
  size_t log2_rows = 0;
  for (size_t n = rows; n > 1; n >>= 1) ++log2_rows;
  const size_t cap = std::max<size_t>(4, 2 * (log2_rows + 1));
  if (chunks->size() <= cap) return;
  // Compact to half the cap (hysteresis: per-commit forks then grow the
  // list back instead of re-merging every time). Merging the adjacent
  // pair with the fewest combined rows keeps big, settled chunks from
  // being recopied while small per-commit chunks coalesce.
  const size_t target = std::max<size_t>(2, cap / 2);
  while (chunks->size() > target) {
    size_t best = 0;
    size_t best_rows = static_cast<size_t>(-1);
    for (size_t i = 0; i + 1 < chunks->size(); ++i) {
      const size_t n = (*chunks)[i]->NumRows() + (*chunks)[i + 1]->NumRows();
      if (n < best_rows) {
        best_rows = n;
        best = i;
      }
    }
    auto merged = std::make_shared<Table>((*chunks)[best]->schema());
    for (const Row& r : (*chunks)[best]->rows()) merged->AppendUnchecked(r);
    for (const Row& r : (*chunks)[best + 1]->rows()) {
      merged->AppendUnchecked(r);
    }
    (*chunks)[best] = std::move(merged);
    chunks->erase(chunks->begin() + static_cast<ptrdiff_t>(best) + 1);
  }
}

DeltaSet::DeltaSet(const DeltaSet& other) : version_(other.version_) {
  for (const auto& [rel, side] : other.inserts_) {
    SealInto(side, &inserts_[rel]);
  }
  for (const auto& [rel, side] : other.deletes_) {
    SealInto(side, &deletes_[rel]);
  }
}

DeltaSet& DeltaSet::operator=(const DeltaSet& other) {
  if (this != &other) *this = DeltaSet(other);
  return *this;
}

Result<DeltaSet::Side*> DeltaSet::SideFor(const Database& db,
                                          const std::string& relation,
                                          std::map<std::string, Side>* sides) {
  auto it = sides->find(relation);
  if (it == sides->end()) {
    SVC_ASSIGN_OR_RETURN(const Table* base, db.GetTable(relation));
    Side s;
    s.tail = Table(base->schema());
    it = sides->emplace(relation, std::move(s)).first;
  }
  return &it->second;
}

Status DeltaSet::AddInsert(const Database& db, const std::string& relation,
                           Row row) {
  SVC_ASSIGN_OR_RETURN(Side * s, SideFor(db, relation, &inserts_));
  if (row.size() != s->tail.schema().NumColumns()) {
    return Status::InvalidArgument("delta insert arity mismatch for " +
                                   relation);
  }
  s->tail.AppendUnchecked(std::move(row));
  ++version_;
  return Status::OK();
}

Status DeltaSet::AddDelete(const Database& db, const std::string& relation,
                           Row row) {
  SVC_ASSIGN_OR_RETURN(Side * s, SideFor(db, relation, &deletes_));
  if (row.size() != s->tail.schema().NumColumns()) {
    return Status::InvalidArgument("delta delete arity mismatch for " +
                                   relation);
  }
  s->tail.AppendUnchecked(std::move(row));
  ++version_;
  return Status::OK();
}

Status DeltaSet::AddUpdate(const Database& db, const std::string& relation,
                           Row old_row, Row new_row) {
  SVC_RETURN_IF_ERROR(AddDelete(db, relation, std::move(old_row)));
  return AddInsert(db, relation, std::move(new_row));
}

Status DeltaSet::Merge(DeltaSet&& other) {
  // Appends other's logical row sequence to this set's tails: the merged
  // queue reads identically to having Add'ed each row here directly, so
  // results never depend on how a batch was staged.
  auto merge_sides = [](std::map<std::string, Side>&& from,
                        std::map<std::string, Side>* into) {
    for (auto& [rel, side] : from) {
      auto it = into->find(rel);
      if (it == into->end()) {
        into->emplace(rel, std::move(side));
      } else {
        side.ForEachRow(
            [&](const Row& r) { it->second.tail.AppendUnchecked(r); });
      }
    }
    from.clear();
  };
  merge_sides(std::move(other.inserts_), &inserts_);
  merge_sides(std::move(other.deletes_), &deletes_);
  ++version_;
  return Status::OK();
}

bool DeltaSet::empty() const {
  for (const auto& [k, s] : inserts_) {
    if (!s.empty_rows()) return false;
  }
  for (const auto& [k, s] : deletes_) {
    if (!s.empty_rows()) return false;
  }
  return true;
}

bool DeltaSet::Touches(const std::string& relation) const {
  return InsertRows(relation) > 0 || DeleteRows(relation) > 0;
}

bool DeltaSet::HasDeletes(const std::string& relation) const {
  return DeleteRows(relation) > 0;
}

size_t DeltaSet::InsertRows(const std::string& relation) const {
  auto it = inserts_.find(relation);
  return it == inserts_.end() ? 0 : it->second.rows();
}

size_t DeltaSet::DeleteRows(const std::string& relation) const {
  auto it = deletes_.find(relation);
  return it == deletes_.end() ? 0 : it->second.rows();
}

size_t DeltaSet::TotalInserts() const {
  size_t n = 0;
  for (const auto& [k, s] : inserts_) n += s.rows();
  return n;
}

size_t DeltaSet::TotalDeletes() const {
  size_t n = 0;
  for (const auto& [k, s] : deletes_) n += s.rows();
  return n;
}

std::vector<std::string> DeltaSet::TouchedRelations() const {
  std::set<std::string> out;
  for (const auto& [k, s] : inserts_) {
    if (!s.empty_rows()) out.insert(k);
  }
  for (const auto& [k, s] : deletes_) {
    if (!s.empty_rows()) out.insert(k);
  }
  return {out.begin(), out.end()};
}

void DeltaSet::RetainRows(const std::string& relation,
                          const std::function<bool(const Row&)>& keep) {
  auto retain = [&](std::map<std::string, Side>* sides) {
    auto it = sides->find(relation);
    if (it == sides->end()) return;
    Side rebuilt;
    rebuilt.tail = Table(it->second.tail.schema());
    it->second.ForEachRow([&](const Row& r) {
      if (keep(r)) rebuilt.tail.AppendUnchecked(r);
    });
    it->second = std::move(rebuilt);
  };
  retain(&inserts_);
  retain(&deletes_);
  ++version_;
}

DeltaWatermark DeltaSet::Watermark() const {
  DeltaWatermark mark;
  for (const auto& [rel, s] : inserts_) mark.insert_rows[rel] = s.rows();
  for (const auto& [rel, s] : deletes_) mark.delete_rows[rel] = s.rows();
  return mark;
}

Result<DeltaSet> DeltaSet::SliceSince(const DeltaWatermark& mark) const {
  DeltaSet out;
  auto slice = [&](const std::map<std::string, Side>& sides,
                   const std::map<std::string, size_t>& marks,
                   std::map<std::string, Side>* out_sides) -> Status {
    // A watermark entry for a relation this set no longer tracks means the
    // queue was emptied after the mark was taken.
    for (const auto& [rel, n] : marks) {
      if (n > 0 && sides.find(rel) == sides.end()) {
        return Status::InvalidArgument(
            "delta watermark references relation '" + rel +
            "' with no pending rows; it predates a maintenance commit");
      }
    }
    for (const auto& [rel, side] : sides) {
      auto mit = marks.find(rel);
      const size_t skip = mit == marks.end() ? 0 : mit->second;
      const size_t total = side.rows();
      if (skip > total) {
        return Status::InvalidArgument(
            "delta watermark is ahead of the queue (" + std::to_string(skip) +
            " > " + std::to_string(total) + " rows); it predates a "
            "maintenance commit");
      }
      if (skip == total) continue;
      Side& dst = (*out_sides)[rel];
      dst.tail = Table(side.tail.schema());
      // Skip whole sealed chunks by row count so the slice costs
      // O(new rows + #chunks), not O(all queued rows).
      size_t remaining = skip;
      auto copy_from = [&](const Table& t) {
        if (remaining >= t.NumRows()) {
          remaining -= t.NumRows();
          return;
        }
        for (size_t i = remaining; i < t.NumRows(); ++i) {
          dst.tail.AppendUnchecked(t.row(i));
        }
        remaining = 0;
      };
      for (const auto& chunk : side.chunks) copy_from(*chunk);
      copy_from(side.tail);
    }
    return Status::OK();
  };
  SVC_RETURN_IF_ERROR(slice(inserts_, mark.insert_rows, &out.inserts_));
  SVC_RETURN_IF_ERROR(slice(deletes_, mark.delete_rows, &out.deletes_));
  out.version_ = 1;
  return out;
}

std::vector<std::string> DeltaSet::TableNamesFor(
    const std::map<std::string, Side>& sides, const std::string& relation,
    const std::string& base) {
  std::vector<std::string> names;
  auto it = sides.find(relation);
  if (it == sides.end()) return names;
  const Side& s = it->second;
  for (size_t k = 0; k < s.chunks.size(); ++k) {
    if (!s.chunks[k]->empty()) names.push_back(DeltaChunkName(base, k));
  }
  if (!s.tail.empty()) names.push_back(base);
  return names;
}

std::vector<std::string> DeltaSet::InsertTableNames(
    const std::string& relation) const {
  return TableNamesFor(inserts_, relation, DeltaInsertName(relation));
}

std::vector<std::string> DeltaSet::DeleteTableNames(
    const std::string& relation) const {
  return TableNamesFor(deletes_, relation, DeltaDeleteName(relation));
}

Status DeltaSet::Register(Database* db) const {
  // Sealed chunks register by shared pointer — no row copies, and a chunk
  // is immutable for as long as any DeltaSet or catalog references it.
  // The tail registers by value under the canonical name (it keeps
  // mutating here); an empty tail still registers so a pre-seal copy of
  // the tail left in a forked catalog can never be scanned twice.
  auto reg = [&](const std::map<std::string, Side>& sides,
                 auto name_of) {
    for (const auto& [rel, s] : sides) {
      const std::string base = name_of(rel);
      for (size_t k = 0; k < s.chunks.size(); ++k) {
        db->PutTableShared(DeltaChunkName(base, k), s.chunks[k]);
      }
      // Compaction can shrink the chunk count between forks; drop the
      // trailing names a wider previous registration left behind so the
      // catalog doesn't pin (or double-expose) retired chunks.
      for (size_t k = s.chunks.size(); db->HasTable(DeltaChunkName(base, k));
           ++k) {
        (void)db->DropTable(DeltaChunkName(base, k));
      }
      db->PutTable(base, s.tail);
    }
  };
  reg(inserts_, DeltaInsertName);
  reg(deletes_, DeltaDeleteName);
  return Status::OK();
}

Status DeltaSet::ApplyToBase(Database* db) {
  // Deletes first so an update (delete + insert of the same key) lands as a
  // replacement rather than a duplicate-key failure.
  for (const auto& [rel, s] : deletes_) {
    SVC_ASSIGN_OR_RETURN(Table * base, db->GetMutableTable(rel));
    Status st = Status::OK();
    s.ForEachRow([&](const Row& r) {
      if (st.ok()) st = base->DeleteByKeyOf(r).status();
    });
    SVC_RETURN_IF_ERROR(st);
  }
  for (const auto& [rel, s] : inserts_) {
    SVC_ASSIGN_OR_RETURN(Table * base, db->GetMutableTable(rel));
    Status st = Status::OK();
    s.ForEachRow([&](const Row& r) {
      if (st.ok()) st = base->Insert(r);
    });
    SVC_RETURN_IF_ERROR(st);
  }
  auto drop = [&](const std::map<std::string, Side>& sides, auto name_of) {
    for (const auto& [rel, s] : sides) {
      const std::string base = name_of(rel);
      size_t k = 0;
      for (; k < s.chunks.size(); ++k) {
        (void)db->DropTable(DeltaChunkName(base, k));
      }
      // Also sweep stale names beyond the (possibly compacted) chunk count.
      for (; db->HasTable(DeltaChunkName(base, k)); ++k) {
        (void)db->DropTable(DeltaChunkName(base, k));
      }
      (void)db->DropTable(base);
    }
  };
  drop(inserts_, DeltaInsertName);
  drop(deletes_, DeltaDeleteName);
  inserts_.clear();
  deletes_.clear();
  ++version_;
  return Status::OK();
}

}  // namespace svc
