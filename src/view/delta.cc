#include "view/delta.h"

#include <set>

namespace svc {

std::string DeltaInsertName(const std::string& relation) {
  return "__ins_" + relation;
}

std::string DeltaDeleteName(const std::string& relation) {
  return "__del_" + relation;
}

Result<Table*> DeltaSet::DeltaTableFor(const Database& db,
                                       const std::string& relation,
                                       std::map<std::string, Table>* side) {
  auto it = side->find(relation);
  if (it == side->end()) {
    SVC_ASSIGN_OR_RETURN(const Table* base, db.GetTable(relation));
    Table t(base->schema());
    it = side->emplace(relation, std::move(t)).first;
  }
  return &it->second;
}

Status DeltaSet::AddInsert(const Database& db, const std::string& relation,
                           Row row) {
  SVC_ASSIGN_OR_RETURN(Table * t, DeltaTableFor(db, relation, &inserts_));
  if (row.size() != t->schema().NumColumns()) {
    return Status::InvalidArgument("delta insert arity mismatch for " +
                                   relation);
  }
  t->AppendUnchecked(std::move(row));
  return Status::OK();
}

Status DeltaSet::AddDelete(const Database& db, const std::string& relation,
                           Row row) {
  SVC_ASSIGN_OR_RETURN(Table * t, DeltaTableFor(db, relation, &deletes_));
  if (row.size() != t->schema().NumColumns()) {
    return Status::InvalidArgument("delta delete arity mismatch for " +
                                   relation);
  }
  t->AppendUnchecked(std::move(row));
  return Status::OK();
}

Status DeltaSet::AddUpdate(const Database& db, const std::string& relation,
                           Row old_row, Row new_row) {
  SVC_RETURN_IF_ERROR(AddDelete(db, relation, std::move(old_row)));
  return AddInsert(db, relation, std::move(new_row));
}

Status DeltaSet::Merge(DeltaSet&& other) {
  for (auto& [rel, t] : other.inserts_) {
    auto it = inserts_.find(rel);
    if (it == inserts_.end()) {
      inserts_.emplace(rel, std::move(t));
    } else {
      for (auto& r : t.rows()) it->second.AppendUnchecked(r);
    }
  }
  for (auto& [rel, t] : other.deletes_) {
    auto it = deletes_.find(rel);
    if (it == deletes_.end()) {
      deletes_.emplace(rel, std::move(t));
    } else {
      for (auto& r : t.rows()) it->second.AppendUnchecked(r);
    }
  }
  other.inserts_.clear();
  other.deletes_.clear();
  return Status::OK();
}

bool DeltaSet::empty() const {
  for (const auto& [k, t] : inserts_) {
    if (!t.empty()) return false;
  }
  for (const auto& [k, t] : deletes_) {
    if (!t.empty()) return false;
  }
  return true;
}

bool DeltaSet::Touches(const std::string& relation) const {
  auto i = inserts_.find(relation);
  if (i != inserts_.end() && !i->second.empty()) return true;
  auto d = deletes_.find(relation);
  return d != deletes_.end() && !d->second.empty();
}

bool DeltaSet::HasDeletes(const std::string& relation) const {
  auto d = deletes_.find(relation);
  return d != deletes_.end() && !d->second.empty();
}

size_t DeltaSet::TotalInserts() const {
  size_t n = 0;
  for (const auto& [k, t] : inserts_) n += t.NumRows();
  return n;
}

size_t DeltaSet::TotalDeletes() const {
  size_t n = 0;
  for (const auto& [k, t] : deletes_) n += t.NumRows();
  return n;
}

std::vector<std::string> DeltaSet::TouchedRelations() const {
  std::set<std::string> out;
  for (const auto& [k, t] : inserts_) {
    if (!t.empty()) out.insert(k);
  }
  for (const auto& [k, t] : deletes_) {
    if (!t.empty()) out.insert(k);
  }
  return {out.begin(), out.end()};
}

const Table* DeltaSet::inserts(const std::string& relation) const {
  auto it = inserts_.find(relation);
  return it == inserts_.end() ? nullptr : &it->second;
}

const Table* DeltaSet::deletes(const std::string& relation) const {
  auto it = deletes_.find(relation);
  return it == deletes_.end() ? nullptr : &it->second;
}

Status DeltaSet::Register(Database* db) const {
  for (const auto& [rel, t] : inserts_) {
    db->PutTable(DeltaInsertName(rel), t);
  }
  for (const auto& [rel, t] : deletes_) {
    db->PutTable(DeltaDeleteName(rel), t);
  }
  return Status::OK();
}

Status DeltaSet::ApplyToBase(Database* db) {
  // Deletes first so an update (delete + insert of the same key) lands as a
  // replacement rather than a duplicate-key failure.
  for (const auto& [rel, t] : deletes_) {
    SVC_ASSIGN_OR_RETURN(Table * base, db->GetMutableTable(rel));
    for (const auto& r : t.rows()) {
      SVC_RETURN_IF_ERROR(base->DeleteByKeyOf(r).status());
    }
  }
  for (const auto& [rel, t] : inserts_) {
    SVC_ASSIGN_OR_RETURN(Table * base, db->GetMutableTable(rel));
    for (const auto& r : t.rows()) {
      SVC_RETURN_IF_ERROR(base->Insert(r));
    }
  }
  for (const auto& [rel, t] : inserts_) {
    (void)t;
    (void)db->DropTable(DeltaInsertName(rel));
  }
  for (const auto& [rel, t] : deletes_) {
    (void)t;
    (void)db->DropTable(DeltaDeleteName(rel));
  }
  inserts_.clear();
  deletes_.clear();
  return Status::OK();
}

}  // namespace svc
