#!/usr/bin/env bash
# Full verification: Release build + tests, Debug+ASan/UBSan build + tests,
# and the executor performance regression gate (bench/micro_ops must show
# >= MIN_SPEEDUP on the join+aggregate pipeline vs. the string-keyed
# baseline; see docs/PERF.md).
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer build (Release tests + bench gate only)

set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${MIN_SPEEDUP:-3.0}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== Release build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$(nproc)"

echo "== Release tests =="
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "$FAST" -eq 0 ]]; then
  echo "== Debug + ASan/UBSan build =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DSVC_SANITIZE=ON
  cmake --build build-asan -j"$(nproc)"

  echo "== Sanitizer tests =="
  ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
fi

echo "== Executor bench gate (>= ${MIN_SPEEDUP}x join+aggregate) =="
./build/micro_ops --out BENCH_executor.json --min-speedup "$MIN_SPEEDUP"

echo "All checks passed."
