#!/usr/bin/env bash
# Full verification: Release build + tests, Debug+ASan/UBSan build + tests,
# and the executor performance regression gate (bench/micro_ops must show
# >= MIN_SPEEDUP on the join+aggregate pipeline vs. the string-keyed
# baseline; see docs/PERF.md).
#
# Usage: scripts/check.sh [--fast] [--tsan] [--recovery] [--server]
#                         [--shards] [--policy] [--chaos]
#   --fast  skip the sanitizer build (Release tests + bench gate only)
#   --tsan  ThreadSanitizer mode ONLY: Debug+TSan build + full test suite
#           (the shared-engine concurrency tests are the point); skips the
#           Release/ASan builds and the bench gate. Used by the CI tsan job.
#   --server  network-server mode ONLY: protocol + server test suites, a
#           svc_served round-trip smoke (svc_shell --connect must reproduce
#           the quickstart golden bit-identically over the wire), and a
#           fig14 --net serving smoke. Used by the CI server job.
#   --recovery  durability mode ONLY: the storage/WAL/recovery test suite
#           (serde, WAL framing, kill-and-recover differential matrix) in
#           both Release and Debug+ASan/UBSan builds, plus a durable
#           svc_shell crash-and-restart smoke. Used by the CI recovery job.
#   --shards  sharded scatter-gather mode ONLY: the shard suites (sharded
#           engine, estimator merge, differential shard matrix, sharded
#           coverage, sharded stats invariance), the sharded quickstart
#           golden (enforced at --shards 2 AND 4 — SHOW STATS counters are
#           logical, so the whole transcript is shard-count-invariant),
#           and a full-transcript invariance smoke at 1, 2, and 8 shards.
#           Used by the CI shards job.
#   --policy  maintenance-policy mode ONLY: the policy suites (cost model,
#           scheduler differential, sharded stats), the policy quickstart
#           golden on the private AND sharded engines, and the
#           fig17 error-vs-refreshes Pareto gate (a policy point must
#           reach a fixed-interval baseline's accuracy with strictly
#           fewer refresh commits). Used by the CI policy job.
#   --chaos  fault-injection mode ONLY, everything under ASan/UBSan: the
#           chaos + protocol + server suites (tests/test_chaos.cc is the
#           in-process matrix — every SVC_NET_FAULT site x fault position
#           x {text, prepared}, plus deadline, degrade, idempotent-retry,
#           and crash-mid-response coverage), then a process-level
#           differential: for each net-fault site x {in-memory,
#           --data-dir}, a retrying svc_shell --connect must complete the
#           quickstart workload with a transcript bit-identical to a
#           fault-free run over the same server mode, and the server log
#           must prove the fault fired. Finishes with the fig14
#           --net-chaos counter merge into BENCH_executor.json. Used by
#           the CI chaos job.
#
# Environment knobs:
#   MIN_SPEEDUP           baseline-vs-current gate floor (default 3.0;
#                         CI uses 2.0 — shared runners are noisy)
#   MIN_PARALLEL_SPEEDUP  threads=1 vs threads=N gate floor (default off:
#                         the attainable ratio is bounded by the physical
#                         core count, so only opt in on known hardware)
#   MIN_CACHE_SPEEDUP     warm vs cold repeated-SVC-query gate floor
#                         (default 5.0; the cleaned-sample cache must keep
#                         repeated queries >= 5x faster than re-cleaning)
#   BENCH_THREADS         thread count for the parallel section (default 8)

set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${MIN_SPEEDUP:-3.0}"
MIN_PARALLEL_SPEEDUP="${MIN_PARALLEL_SPEEDUP:-0}"
MIN_CACHE_SPEEDUP="${MIN_CACHE_SPEEDUP:-5.0}"
BENCH_THREADS="${BENCH_THREADS:-8}"
FAST=0
TSAN=0
RECOVERY=0
SERVER=0
SHARDS=0
POLICY=0
CHAOS=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --tsan) TSAN=1 ;;
    --recovery) RECOVERY=1 ;;
    --server) SERVER=1 ;;
    --shards) SHARDS=1 ;;
    --policy) POLICY=1 ;;
    --chaos) CHAOS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Parallel build/test width: nproc is Linux-only (macOS runners need
# sysctl); default to 4 when neither exists.
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "$TSAN" -eq 1 ]]; then
  echo "== Debug + ThreadSanitizer build (${JOBS} jobs) =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DSVC_TSAN=ON
  cmake --build build-tsan -j"$JOBS"

  echo "== TSan tests (full suite; concurrency tests are the target) =="
  ctest --test-dir build-tsan --output-on-failure --no-tests=error -j"$JOBS"

  echo "== TSan shared-engine bench smoke (readers + concurrent refresher) =="
  ./build-tsan/fig14_sql_sessions --rows 2000 --sessions 2 --iters 2 \
    --batch 40 --shared
  echo "All TSan checks passed."
  exit 0
fi

if [[ "$SERVER" -eq 1 ]]; then
  echo "== Release build (${JOBS} jobs) =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$JOBS"

  echo "== Protocol + server tests (Release) =="
  ctest --test-dir build --output-on-failure --no-tests=error -j"$JOBS" \
    -R 'test_(protocol|server)'

  echo "== svc_served wire round-trip smoke (quickstart golden) =="
  SMOKE_DIR="$(mktemp -d)"
  ./build/svc_served --host 127.0.0.1 --port 0 \
    --port-file "$SMOKE_DIR/port" 2> "$SMOKE_DIR/served.log" &
  SERVER_PID=$!
  trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
  for _ in $(seq 1 100); do
    [[ -s "$SMOKE_DIR/port" ]] && break
    sleep 0.1
  done
  if [[ ! -s "$SMOKE_DIR/port" ]]; then
    echo "svc_served never wrote its port file:" >&2
    cat "$SMOKE_DIR/served.log" >&2
    exit 1
  fi
  PORT="$(cat "$SMOKE_DIR/port")"
  ./build/svc_shell --connect "127.0.0.1:$PORT" --echo \
    --file examples/quickstart.sql > "$SMOKE_DIR/out.txt"
  diff -u examples/quickstart.golden "$SMOKE_DIR/out.txt"
  echo "quickstart golden reproduced bit-identically over the wire"
  kill "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true

  echo "== Network serving smoke (fig14 --net) =="
  ./build/fig14_sql_sessions --rows 2000 --sessions 2 --iters 2 --batch 40 \
    --net --net-queries 50
  echo "All server checks passed."
  exit 0
fi

if [[ "$SHARDS" -eq 1 ]]; then
  echo "== Release build (${JOBS} jobs) =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$JOBS"

  echo "== Sharded scatter-gather suites (Release) =="
  ctest --test-dir build --output-on-failure --no-tests=error -j"$JOBS" \
    -R 'test_(sharded_engine|sharded_stats|estimator_merge|differential|coverage)|svc_shell_quickstart_sharded'

  echo "== Shard-count invariance smoke (full transcript at 1, 2, 8 shards) =="
  # The whole transcript — answers AND SHOW STATS, whose counters are
  # logical per-statement quantities rather than per-shard sums — must be
  # byte-identical to the committed golden at any shard count. (ctest
  # above already enforces 2 and 4.)
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  for n in 1 2 8; do
    ./build/svc_shell --shards "$n" --echo \
      --file examples/quickstart-sharded.sql > "$SMOKE_DIR/out-$n.txt"
    diff -u examples/quickstart-sharded.golden "$SMOKE_DIR/out-$n.txt"
  done
  echo "transcript is shard-count invariant"

  echo "All sharded checks passed."
  exit 0
fi

if [[ "$POLICY" -eq 1 ]]; then
  echo "== Release build (${JOBS} jobs) =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$JOBS"

  echo "== Maintenance-policy suites (Release) =="
  ctest --test-dir build --output-on-failure --no-tests=error -j"$JOBS" \
    -R 'test_(maintenance_policy|sharded_stats|recovery)|svc_shell_quickstart_policy'

  echo "== Policy Pareto gate (fig17: beat a fixed-interval baseline) =="
  ./build/fig17_policy_pareto --check

  echo "All policy checks passed."
  exit 0
fi

if [[ "$CHAOS" -eq 1 ]]; then
  echo "== Debug + ASan/UBSan build (${JOBS} jobs) =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DSVC_SANITIZE=ON
  cmake --build build-asan -j"$JOBS"

  echo "== Chaos + protocol + server suites (ASan) =="
  # test_chaos is the in-process matrix: every net-fault site x position x
  # {text Query, prepared Execute}, deadline expiry, degraded admission,
  # durable idempotent retry, and the fork-based crash-mid-response
  # differential.
  ctest --test-dir build-asan --output-on-failure --no-tests=error \
    -j"$JOBS" -R 'test_(chaos|protocol|server)'

  echo "== Process-level net-fault differential (site x engine mode) =="
  # The env-armed path end to end: SVC_NET_FAULT damages one mid-workload
  # response inside a real svc_served process, and a retrying svc_shell
  # must still produce a transcript bit-identical to a fault-free run over
  # the same server mode. (nth=7: the Hello response is hit 1, so the
  # damage lands on statement 6 of the quickstart.)
  SMOKE_DIR="$(mktemp -d)"
  SERVER_PID=""
  trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
  start_served() {  # start_served <log> <fault-spec|""> [svc_served args...]
    local log="$1" fault="$2"; shift 2
    rm -f "$SMOKE_DIR/port"
    # An empty SVC_NET_FAULT is ignored by the injector, so the baseline
    # runs take the same code path with nothing armed.
    SVC_NET_FAULT="$fault" ./build-asan/svc_served --host 127.0.0.1 \
      --port 0 --port-file "$SMOKE_DIR/port" "$@" 2> "$log" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
      [[ -s "$SMOKE_DIR/port" ]] && return 0
      sleep 0.1
    done
    echo "svc_served never wrote its port file:" >&2
    cat "$log" >&2
    return 1
  }
  stop_served() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
  }
  run_quickstart() {  # run_quickstart <out>
    ./build-asan/svc_shell --connect "127.0.0.1:$(cat "$SMOKE_DIR/port")" \
      --retry 8 --recv-timeout-ms 1000 --echo \
      --file examples/quickstart.sql > "$1"
  }
  for engine in mem durable; do
    engine_args=()
    if [[ "$engine" == durable ]]; then
      engine_args=(--data-dir "$SMOKE_DIR/base-$engine")
    fi
    start_served "$SMOKE_DIR/served-base-$engine.log" "" "${engine_args[@]}"
    run_quickstart "$SMOKE_DIR/baseline-$engine.txt"
    stop_served
    for site in conn.stall conn.close_mid_frame conn.drop_response \
                send.short_write; do
      engine_args=()
      if [[ "$engine" == durable ]]; then
        engine_args=(--data-dir "$SMOKE_DIR/data-$engine-$site")
      fi
      LOG="$SMOKE_DIR/served-$engine-$site.log"
      start_served "$LOG" "$site:7" "${engine_args[@]}"
      run_quickstart "$SMOKE_DIR/out-$engine-$site.txt"
      stop_served
      diff -u "$SMOKE_DIR/baseline-$engine.txt" \
        "$SMOKE_DIR/out-$engine-$site.txt"
      if ! grep -q "\[net-fault\] injected $site" "$LOG"; then
        echo "expected $site to fire in the $engine run; server log:" >&2
        cat "$LOG" >&2
        exit 1
      fi
      echo "  $engine x $site: transcript identical, fault fired"
    done
  done

  echo "== Chaos serving counters (fig14 --net-chaos) =="
  # Merged next to the throughput numbers so the robustness counters ride
  # the same BENCH artifact CI already uploads.
  if [[ ! -f BENCH_executor.json ]]; then
    printf '{\n  "source": "scripts/check.sh --chaos"\n}\n' \
      > BENCH_executor.json
  fi
  ./build-asan/fig14_sql_sessions --rows 3000 --sessions 3 --iters 2 \
    --batch 40 --net --net-queries 80 --net-chaos \
    --merge-json BENCH_executor.json
  grep -o '"fig14_chaos": {' BENCH_executor.json > /dev/null
  echo "All chaos checks passed."
  exit 0
fi

if [[ "$RECOVERY" -eq 1 ]]; then
  echo "== Release build (${JOBS} jobs) =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j"$JOBS"

  echo "== Durability tests (Release) =="
  ctest --test-dir build --output-on-failure --no-tests=error -j"$JOBS" \
    -R 'test_(serde|wal|recovery)'

  echo "== Debug + ASan/UBSan build =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DSVC_SANITIZE=ON
  cmake --build build-asan -j"$JOBS"

  echo "== Durability tests (ASan/UBSan; fork-based crash matrix) =="
  ctest --test-dir build-asan --output-on-failure --no-tests=error \
    -j"$JOBS" -R 'test_(serde|wal|recovery)'

  echo "== Durable shell crash-and-restart smoke (SVC_FAULT) =="
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  rc=0
  SVC_FAULT=wal.append.post:4 ./build/svc_shell --data-dir "$SMOKE_DIR" \
    --file examples/quickstart.sql >/dev/null 2>&1 || rc=$?
  if [[ "$rc" -ne 87 ]]; then
    echo "expected injected-crash exit 87 from svc_shell, got $rc" >&2
    exit 1
  fi
  ./build/svc_shell --data-dir "$SMOKE_DIR" -c "SHOW TABLES; SHOW STATS;" \
    > /dev/null
  echo "All recovery checks passed."
  exit 0
fi

echo "== Release build (${JOBS} jobs) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$JOBS"

echo "== Release tests =="
ctest --test-dir build --output-on-failure --no-tests=error -j"$JOBS"

if [[ "$FAST" -eq 0 ]]; then
  echo "== Debug + ASan/UBSan build =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DSVC_SANITIZE=ON
  cmake --build build-asan -j"$JOBS"

  echo "== Sanitizer tests =="
  ctest --test-dir build-asan --output-on-failure --no-tests=error -j"$JOBS"
fi

echo "== Executor bench gate (>= ${MIN_SPEEDUP}x join+aggregate) =="
gate_rc=0
./build/micro_ops --out BENCH_executor.json --min-speedup "$MIN_SPEEDUP" \
  --threads "$BENCH_THREADS" \
  --min-parallel-speedup "$MIN_PARALLEL_SPEEDUP" \
  --min-cache-speedup "$MIN_CACHE_SPEEDUP" || gate_rc=$?

# Always surface the measured ratios, pass or fail, so CI logs record them.
echo "== Measured speedups (BENCH_executor.json) =="
grep -o '"gate": {[^}]*}' BENCH_executor.json | sed 's/^/  /' || true
grep -o '"ingest_commit": \[[^]]*\]' BENCH_executor.json | sed 's/^/  /' || true

if [[ "$gate_rc" -ne 0 ]]; then
  echo "Bench gate FAILED (micro_ops exit $gate_rc)." >&2
  exit "$gate_rc"
fi

echo "== Shared-engine serving smoke (fig14 --shared) =="
./build/fig14_sql_sessions --rows 2000 --sessions 2 --iters 3 --batch 50 \
  --shared

# Docs: intra-repo markdown links must resolve (CI's docs job also
# golden-diffs examples/quickstart.sql — covered here by ctest).
if command -v python3 >/dev/null 2>&1; then
  echo "== Markdown link check =="
  python3 scripts/check_md_links.py
fi
echo "All checks passed."
