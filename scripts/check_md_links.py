#!/usr/bin/env python3
"""Checks that intra-repo markdown links resolve.

Scans README.md, ROADMAP.md, and docs/*.md for inline links
[text](target) and verifies that every relative target exists on disk
(anchors are stripped; for same-file anchors the heading must exist).
External schemes (http/https/mailto) are skipped. Exits non-zero listing
every broken link. Stdlib only — runs anywhere python3 exists.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_in(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        content = f.read()
    return {anchor_of(h) for h in HEADING_RE.findall(content)}


def check_file(md_path: str) -> list:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    base = os.path.dirname(md_path)
    for target in LINK_RE.findall(content):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, ...
        path_part, _, anchor = target.partition("#")
        resolved = (
            md_path if not path_part else os.path.normpath(
                os.path.join(base, path_part))
        )
        rel = os.path.relpath(md_path, REPO)
        if not os.path.exists(resolved):
            errors.append(f"{rel}: broken link ({target}): "
                          f"{os.path.relpath(resolved, REPO)} does not exist")
            continue
        if anchor and resolved.endswith(".md"):
            if anchor_of(anchor) not in anchors_in(resolved):
                errors.append(
                    f"{rel}: broken anchor ({target}): no heading "
                    f"'#{anchor}' in {os.path.relpath(resolved, REPO)}")
    return errors


def main() -> int:
    files = [os.path.join(REPO, "README.md"), os.path.join(REPO, "ROADMAP.md")]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        files += sorted(
            os.path.join(docs, f) for f in os.listdir(docs)
            if f.endswith(".md"))
    errors = []
    checked = 0
    for path in files:
        if not os.path.exists(path):
            errors.append(f"expected file missing: {os.path.relpath(path, REPO)}")
            continue
        checked += 1
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\n{len(errors)} broken link(s) across {checked} file(s).",
              file=sys.stderr)
        return 1
    print(f"OK: markdown links resolve in {checked} file(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
