# Runs ${SHELL} [${SHELL_FLAGS}] --echo --file ${SCRIPT} and fails unless
# the output matches ${GOLDEN} exactly. Invoked by ctest (see
# CMakeLists.txt) and mirrored by the CI docs job so documented example
# transcripts cannot rot. SHELL_FLAGS optionally injects extra flags (e.g.
# --shared runs the transcript on the snapshot-isolated engine). DATA_DIR,
# when set, is wiped and passed as --data-dir so the transcript runs on a
# fresh durable engine (recovery chatter goes to stderr, not the diff).
if(NOT DEFINED SHELL_FLAGS)
  set(SHELL_FLAGS "")
endif()
separate_arguments(SHELL_FLAGS)
if(DEFINED DATA_DIR)
  file(REMOVE_RECURSE ${DATA_DIR})
  file(MAKE_DIRECTORY ${DATA_DIR})
  list(APPEND SHELL_FLAGS --data-dir ${DATA_DIR})
endif()
execute_process(
  COMMAND ${SHELL} ${SHELL_FLAGS} --echo --file ${SCRIPT}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE errout
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "svc_shell failed (exit ${rc}) on ${SCRIPT}:\n"
                      "${actual}\n${errout}")
endif()
file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  file(WRITE ${CMAKE_BINARY_DIR}/quickstart.actual "${actual}")
  message(FATAL_ERROR
          "output of ${SCRIPT} diverged from ${GOLDEN}.\n"
          "Actual output written to ${CMAKE_BINARY_DIR}/quickstart.actual.\n"
          "If the change is intentional, regenerate the golden with:\n"
          "  ./build/svc_shell --echo --file examples/quickstart.sql "
          "> examples/quickstart.golden")
endif()
