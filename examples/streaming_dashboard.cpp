// Streaming dashboard on the Conviva-like activity log (§7.5/§7.6.2):
// periodic batched maintenance with SVC answering between batches. Each
// round, a batch of new log records arrives; the dashboard answers its
// queries immediately from a cleaned sample, then full maintenance commits
// and the cycle repeats — the freshness-vs-cost middle ground the paper
// proposes.

#include <cmath>
#include <cstdio>

#include "conviva/conviva.h"
#include "core/svc.h"
#include "sql/planner.h"

using namespace svc;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Val(Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  ConvivaConfig cfg;
  cfg.num_sessions = 20000;
  Database db = Val(GenerateConvivaDatabase(cfg));
  SvcEngine engine(std::move(db));

  // The dashboard serves the bytes-transferred view (the paper's V2).
  const ConvivaView v2 = ConvivaViews()[1];
  PlanPtr def = Val(SqlToPlan(v2.sql, *engine.db()));
  Check(engine.CreateView("V2", def));

  AggregateQuery total_bytes = AggregateQuery::Sum(
      Expr::Col("total_bytes"),
      Expr::Le(Expr::Col("day"), Expr::LitInt(15)));

  std::printf("round  pending   stale_answer    svc_answer (95%% CI)"
              "        truth        svc_err\n");
  for (int round = 1; round <= 4; ++round) {
    // A batch of new activity arrives.
    DeltaSet batch = Val(GenerateConvivaUpdates(*engine.db(), cfg, 0.06,
                                                round * 17));
    Check(engine.IngestDeltas(std::move(batch)));

    // Answer immediately from a cleaned sample (auto AQP/CORR policy).
    SvcQueryOptions opts;
    opts.ratio = 0.10;
    opts.auto_mode = true;
    SvcAnswer ans = Val(engine.Query("V2", total_bytes, opts));
    const double stale = Val(engine.QueryStale("V2", total_bytes));
    const double truth =
        Val(ExactAggregate(Val(engine.ComputeFreshView("V2")), total_bytes));
    std::printf(
        "%5d  %7zu  %12.4e  %12.4e ±%.2e  %12.4e  %6.2f%% (%s)\n", round,
        engine.pending().TotalInserts(), stale, ans.estimate.value,
        ans.estimate.HalfWidth(), truth,
        100 * std::fabs(ans.estimate.value - truth) / truth,
        ans.mode_used == EstimatorMode::kCorr ? "CORR" : "AQP");

    // Periodic maintenance commits the batch.
    Check(engine.MaintainAll());
  }
  std::printf("\nall batches committed; view is %s\n",
              engine.IsStale() ? "stale" : "fresh");
  return 0;
}
