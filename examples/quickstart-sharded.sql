-- Sharded quickstart: the same SVC lifecycle on a scatter-gather
-- ShardedEngine. Base tables and delta queues are hash-partitioned by
-- each view's sampling key; queries fan out to per-shard snapshots and
-- the merged samples feed the stock estimators at the coordinator, so
-- every answer below is bit-identical to the unsharded transcript
-- (docs/ARCHITECTURE.md, "Sharded serving"). Run with:
--   ./build/svc_shell --shards N --echo --file examples/quickstart-sharded.sql
-- The transcript is shard-count-invariant, SHOW STATS included: counters
-- and the delta version are logical, per-statement quantities (one
-- scatter-gather query is one hit/miss/clean), so the golden reproduces
-- at any --shards N.

CREATE TABLE Video (videoId INT, ownerId INT, duration DOUBLE,
                    PRIMARY KEY (videoId));
CREATE TABLE Log (sessionId INT, videoId INT, PRIMARY KEY (sessionId));

-- Initial load. INSERT routes each delta to the shard that owns its
-- sampling key; REFRESH ALL commits all shards (independently, in
-- parallel) and publishes one atomic cut.
INSERT INTO Video VALUES
  (1, 101, 1.5), (2, 102, 0.8), (3, 100, 2.5), (4, 101, 1.1),
  (5, 102, 3.0), (6, 100, 0.4), (7, 101, 2.2), (8, 102, 1.7);
INSERT INTO Log VALUES
  (0, 1), (1, 1), (2, 1), (3, 1), (4, 1), (5, 1),
  (6, 2), (7, 2), (8, 2), (9, 2),
  (10, 3), (11, 3), (12, 3), (13, 3), (14, 3), (15, 3), (16, 3),
  (17, 4), (18, 4),
  (19, 5), (20, 5), (21, 5), (22, 5), (23, 5),
  (24, 6),
  (25, 7), (26, 7), (27, 7),
  (28, 8), (29, 8);
REFRESH ALL;
SHOW TABLES;

-- The running-example view. Its sampling key (videoId) reaches both base
-- relations through the join, so Log and Video are hash-partitioned and
-- every shard maintains its slice of the view.
CREATE MATERIALIZED VIEW visitView AS
  SELECT Log.videoId, COUNT(1) AS visitCount
  FROM Log, Video WHERE Log.videoId = Video.videoId
  GROUP BY Log.videoId;
SELECT videoId, visitCount FROM visitView WHERE visitCount > 4;

-- New visits stream in: each row goes to its owning shard's delta queue.
INSERT INTO Log VALUES
  (100, 2), (101, 2), (102, 2), (103, 2), (104, 2),
  (105, 4), (106, 4), (107, 4), (108, 4),
  (109, 6), (110, 6), (111, 6),
  (112, 1), (113, 3);
SHOW VIEWS;

-- The stale answer misses every new visit...
SELECT COUNT(1) FROM visitView WHERE visitCount > 4;

-- ...SVC scatters the query, gathers per-shard samples, and corrects at
-- the coordinator — same estimate, CI, and sample as unsharded.
SELECT COUNT(1) FROM visitView WHERE visitCount > 4
  WITH SVC(ratio=0.5, mode=corr);
SELECT SUM(visitCount) FROM visitView WITH SVC(ratio=0.5, mode=aqp);

-- Per-group estimates, letting the §5.2.2 break-even rule pick the
-- estimator.
SELECT videoId, SUM(visitCount) AS visits FROM visitView
  GROUP BY videoId WITH SVC(ratio=0.5, mode=auto);

-- Serving statistics: logical counts, identical at every shard count.
SHOW STATS;

-- Maintenance commits every shard's queue; the view is exact again.
REFRESH VIEW visitView;
SELECT videoId, visitCount FROM visitView WHERE visitCount > 4;
SHOW STATS;
