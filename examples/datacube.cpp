// Data-cube dashboard (§7.6.1): materialize the revenue cube over the
// five-way TPCD join and serve every roll-up (including a median) from a
// cleaned 10% sample while updates are pending.

#include <cmath>
#include <cstdio>

#include "core/estimator.h"
#include "relational/executor.h"
#include "sample/cleaner.h"
#include "tpcd/tpcd_gen.h"
#include "tpcd/tpcd_views.h"
#include "view/maintenance.h"

using namespace svc;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Val(Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  TpcdConfig cfg;
  cfg.scale_factor = 0.008;
  cfg.zipf_z = 1.0;
  Database db = Val(GenerateTpcdDatabase(cfg));
  MaterializedView cube =
      Val(MaterializedView::Create("cube", TpcdCubeViewDef(), &db));
  std::printf("revenue cube: %zu cells over (custkey, nation, region, "
              "part)\n",
              Val(db.GetTable("cube"))->NumRows());

  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  DeltaSet deltas = Val(GenerateTpcdUpdates(db, cfg, ucfg));
  Check(deltas.Register(&db));

  CorrespondingSamples samples = Val(CleanViewSample(
      cube, deltas, db, CleanOptions{0.10, HashFamily::kFnv1a}));
  const Table* stale = Val(db.GetTable("cube"));
  MaintenancePlan plan = Val(BuildMaintenancePlan(cube, deltas, db));
  Table fresh = Val(ExecutePlan(*plan.plan, db));
  Check(fresh.SetPrimaryKey(cube.stored_pk()));

  std::printf("\nroll-up dashboard (SVC+CORR-10%% vs truth):\n");
  std::printf("  %-5s %-34s %14s %14s %8s\n", "query", "dimensions",
              "estimate", "truth", "err");
  for (const auto& vq : TpcdCubeRollups()) {
    if (vq.group_by.size() > 1) continue;  // show the headline roll-ups
    GroupedResult truth =
        Val(ExactAggregateGrouped(fresh, vq.group_by, vq.query));
    GroupedResult est = Val(
        SvcCorrEstimateGrouped(*stale, samples, vq.group_by, vq.query));
    // Print the first group of each roll-up as a representative cell.
    if (truth.group_keys.empty()) continue;
    std::vector<size_t> idx(vq.group_by.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    const std::string key = EncodeRowKey(truth.group_keys[0], idx);
    const Estimate* e = est.Find(key);
    std::string dims = vq.group_by.empty() ? "(all)" : "";
    for (const auto& d_ : vq.group_by) {
      dims += (dims.empty() ? "" : ",") + d_;
    }
    const double want = truth.estimates[0].value;
    const double got = e ? e->value : 0;
    std::printf("  %-5s %-34s %14.4e %14.4e %7.2f%%\n", vq.name.c_str(),
                dims.c_str(), got, want,
                100 * std::fabs(got - want) / std::fabs(want));
  }

  // Medians are bootstrap-bounded (§5.2.5) and more robust than sums.
  AggregateQuery med = AggregateQuery::Median(Expr::Col("revenue"));
  Estimate med_est = Val(SvcCorrEstimate(*stale, samples, med));
  const double med_truth = Val(ExactAggregate(fresh, med));
  std::printf(
      "\nmedian cell revenue: estimate %.2f [%.2f, %.2f] vs truth %.2f\n",
      med_est.value, med_est.ci_low, med_est.ci_high, med_truth);
  return 0;
}
