// Log analysis on the TPCD-Skew workload: demonstrates the full SVC
// toolkit on the lineitem ⋈ orders join view —
//   * how far η pushes down the cleaning plan (the plan is printed),
//   * SVC+AQP vs SVC+CORR vs the §5.2.2 auto policy,
//   * the outlier index rescuing a heavy-tailed revenue sum,
//   * select-query cleaning with change-count bounds (§12.1.2).

#include <cmath>
#include <cstdio>

#include "core/outlier.h"
#include "core/policy.h"
#include "core/select_clean.h"
#include "relational/executor.h"
#include "sample/cleaner.h"
#include "tpcd/tpcd_gen.h"
#include "tpcd/tpcd_views.h"
#include "view/maintenance.h"

using namespace svc;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Val(Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  TpcdConfig cfg;
  cfg.scale_factor = 0.01;
  cfg.zipf_z = 3.0;  // heavy-tailed prices
  Database db = Val(GenerateTpcdDatabase(cfg));
  MaterializedView view =
      Val(MaterializedView::Create("join_view", TpcdJoinViewDef(), &db,
                                   TpcdJoinViewSamplingKey()));
  std::printf("join view: %zu rows, sampled on %s\n",
              Val(db.GetTable("join_view"))->NumRows(),
              view.sampling_key()[0].c_str());

  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  DeltaSet deltas = Val(GenerateTpcdUpdates(db, cfg, ucfg));
  Check(deltas.Register(&db));
  std::printf("pending: %zu inserts, %zu deletes\n", deltas.TotalInserts(),
              deltas.TotalDeletes());

  // Show the cleaning expression C and where η landed.
  CleanOptions opts{0.10, HashFamily::kFnv1a};
  PushdownReport report;
  PlanPtr c = Val(BuildCleaningPlan(view, deltas, db, opts, &report));
  std::printf(
      "\ncleaning plan: η reached %d base scans, blocked at %d nodes\n",
      report.at_scan, report.blocked);

  CorrespondingSamples samples = Val(CleanViewSample(view, deltas, db, opts));
  std::printf("corresponding samples: |S_hat| = %zu, |S_hat'| = %zu\n",
              samples.stale.NumRows(), samples.fresh.NumRows());

  // Heavy-tailed revenue sum: plain AQP vs outlier-merged estimates.
  const Table* stale = Val(db.GetTable("join_view"));
  MaintenancePlan plan = Val(BuildMaintenancePlan(view, deltas, db));
  Table fresh = Val(ExecutePlan(*plan.plan, db));
  Check(fresh.SetPrimaryKey(view.stored_pk()));
  AggregateQuery revenue = AggregateQuery::Sum(
      Expr::Mul(Expr::Col("l_extendedprice"),
                Expr::Sub(Expr::LitInt(1), Expr::Col("l_discount"))));
  const double truth = Val(ExactAggregate(fresh, revenue));

  OutlierIndexSpec spec{"lineitem", "l_extendedprice", 100, std::nullopt};
  OutlierIndex index = Val(OutlierIndex::Build(db, deltas, spec));
  OutlierIndex::ViewOutliers outliers =
      Val(index.PushUpToView(view, deltas, &db));
  std::printf(
      "\noutlier index: threshold %.0f, %zu records -> %zu view rows "
      "pinned\n",
      index.threshold(), index.size(), outliers.fresh.NumRows());

  Estimate aqp = Val(SvcAqpEstimate(samples, revenue));
  Estimate aqp_out = Val(SvcAqpEstimateWithOutliers(samples, outliers,
                                                    revenue));
  Estimate corr = Val(SvcCorrEstimate(*stale, samples, revenue));
  Estimate corr_out = Val(SvcCorrEstimateWithOutliers(*stale, samples,
                                                      outliers, revenue));
  auto rel = [&](double v) { return 100 * std::fabs(v - truth) / truth; };
  std::printf("total revenue (truth %.3e):\n", truth);
  std::printf("  stale      : err %5.2f%%\n",
              rel(Val(ExactAggregate(*stale, revenue))));
  std::printf("  AQP        : err %5.2f%%  ci ±%.2e\n", rel(aqp.value),
              aqp.HalfWidth());
  std::printf("  AQP +out   : err %5.2f%%  ci ±%.2e\n", rel(aqp_out.value),
              aqp_out.HalfWidth());
  std::printf("  CORR       : err %5.2f%%  ci ±%.2e\n", rel(corr.value),
              corr.HalfWidth());
  std::printf("  CORR+out   : err %5.2f%%  ci ±%.2e\n", rel(corr_out.value),
              corr_out.HalfWidth());

  // The §5.2.2 policy picks the estimator from the sample itself.
  PolicyDecision d = Val(ChooseEstimator(samples, revenue));
  std::printf("policy: var_stale=%.3e cov=%.3e -> %s\n", d.var_stale, d.cov,
              d.mode == EstimatorMode::kCorr ? "CORR" : "AQP");

  // Select-query cleaning: repair "orders above 300k" and bound what is
  // still uncertain.
  ExprPtr pred = Expr::Gt(Expr::Col("o_totalprice"),
                          Expr::LitDouble(300000));
  CleanedSelect sel = Val(SvcCleanSelect(*stale, samples, pred));
  std::printf(
      "\nselect-cleaning (o_totalprice > 300k): %zu rows; estimated "
      "updated %.0f [%.0f, %.0f], added %.0f, deleted %.0f\n",
      sel.rows.NumRows(), sel.updated_rows.value, sel.updated_rows.ci_low,
      sel.updated_rows.ci_high, sel.added_rows.value,
      sel.deleted_rows.value);
  return 0;
}
