-- Maintenance-policy quickstart: the cost-based scheduler's SQL surface.
-- A view's maintenance score adds three normalized terms — staleness
-- (pending delta rows vs view size), error (the probe estimate's relative
-- CI half-width vs the budget), and SLA (time since the last refresh) —
-- and a score >= 1 marks the view for a refresh commit; anything stale
-- below that is warmed through the serving cache instead
-- (docs/ARCHITECTURE.md, "Maintenance policy"). SHOW MAINTENANCE scores
-- the current state at elapsed time zero, so this transcript is
-- deterministic. Run with:
--   ./build/svc_shell --echo --file examples/quickstart-policy.sql

CREATE TABLE Video (videoId INT, ownerId INT, duration DOUBLE,
                    PRIMARY KEY (videoId));
CREATE TABLE Log (sessionId INT, videoId INT, PRIMARY KEY (sessionId));
INSERT INTO Video VALUES
  (1, 101, 1.5), (2, 102, 0.8), (3, 100, 2.5), (4, 101, 1.1),
  (5, 102, 3.0), (6, 100, 0.4), (7, 101, 2.2), (8, 102, 1.7);
INSERT INTO Log VALUES
  (0, 1), (1, 1), (2, 1), (3, 1), (4, 1), (5, 1),
  (6, 2), (7, 2), (8, 2), (9, 2),
  (10, 3), (11, 3), (12, 3), (13, 3), (14, 3), (15, 3), (16, 3),
  (17, 4), (18, 4),
  (19, 5), (20, 5), (21, 5), (22, 5), (23, 5),
  (24, 6),
  (25, 7), (26, 7), (27, 7),
  (28, 8), (29, 8);
REFRESH ALL;
CREATE MATERIALIZED VIEW visitView AS
  SELECT Log.videoId, COUNT(1) AS visitCount
  FROM Log, Video WHERE Log.videoId = Video.videoId
  GROUP BY Log.videoId;

-- Fresh view: nothing pending, every term zero, nothing to do. The
-- default policy is mode=off — the background scheduler idles until a
-- SET MAINTENANCE POLICY statement arms it.
SHOW MAINTENANCE;

-- New visits queue up against the view...
INSERT INTO Log VALUES
  (100, 2), (101, 2), (102, 2), (103, 2), (104, 2),
  (105, 4), (106, 4), (107, 4), (108, 4),
  (109, 6), (110, 6), (111, 6),
  (112, 1), (113, 3);

-- ...and arming the policy makes the scheduler's decision visible: 14
-- pending rows against an 8-row view put the staleness term at 14/22 —
-- stale enough to warm (the probe that prices the error term also seeds
-- the serving cache), not yet worth a refresh commit. The SLA term, zero
-- here, is what pushes a long-stale view over the threshold.
SET MAINTENANCE POLICY (mode=auto, budget=0.1, sla_ms=1000);
SHOW MAINTENANCE;

-- The refresh commit clears the queue; the score falls back to zero.
REFRESH ALL;
SHOW MAINTENANCE;
SET MAINTENANCE POLICY (mode=off);
SHOW MAINTENANCE;
