// Quickstart: the paper's running example end to end.
//
//   1. Create Log(sessionId, videoId) and Video(videoId, ownerId, duration).
//   2. Materialize visitView = per-video visit counts (defined in SQL).
//   3. Stream new log records in (the view becomes stale).
//   4. Ask "how many videos have more than 100 visits?" three ways:
//      exact-but-stale, SVC+AQP, SVC+CORR — and compare with the truth.

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "core/svc.h"
#include "sql/planner.h"

using namespace svc;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Val(Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  // ---- 1. Base relations ---------------------------------------------------
  Database db;
  Table log(Schema({{"", "sessionId", ValueType::kInt},
                    {"", "videoId", ValueType::kInt}}));
  Check(log.SetPrimaryKey({"sessionId"}));
  Table video(Schema({{"", "videoId", ValueType::kInt},
                      {"", "ownerId", ValueType::kInt},
                      {"", "duration", ValueType::kDouble}}));
  Check(video.SetPrimaryKey({"videoId"}));

  Rng rng(7);
  Zipfian popularity(200, 1.1);  // a few videos get most visits
  for (int64_t v = 1; v <= 200; ++v) {
    Check(video.Insert({Value::Int(v), Value::Int(100 + v % 11),
                        Value::Double(rng.Uniform(0.2, 3.0))}));
  }
  for (int64_t s = 0; s < 30000; ++s) {
    Check(log.Insert({Value::Int(s),
                      Value::Int(static_cast<int64_t>(
                          popularity.Next(&rng)))}));
  }
  Check(db.CreateTable("Log", std::move(log)));
  Check(db.CreateTable("Video", std::move(video)));

  // ---- 2. Materialize the view (SQL front-end) ------------------------------
  SvcEngine engine(std::move(db));
  PlanPtr def = Val(SqlToPlan(
      "SELECT Log.videoId, COUNT(1) AS visitCount "
      "FROM Log, Video WHERE Log.videoId = Video.videoId "
      "GROUP BY Log.videoId",
      *engine.db()));
  Check(engine.CreateView("visitView", def));
  std::printf("visitView materialized: %zu videos\n",
              Val(engine.db()->GetTable("visitView"))->NumRows());

  // ---- 3. New visits arrive (the view is now stale) --------------------------
  for (int64_t s = 30000; s < 36000; ++s) {
    Check(engine.InsertRecord(
        "Log",
        {Value::Int(s), Value::Int(static_cast<int64_t>(
                            popularity.Next(&rng)))}));
  }
  std::printf("ingested 6000 new visits; view is stale: %s\n",
              engine.IsStale() ? "yes" : "no");

  // ---- 4. Query three ways ----------------------------------------------------
  AggregateQuery q = AggregateQuery::Count(
      Expr::Gt(Expr::Col("visitCount"), Expr::LitInt(100)));

  const double stale = Val(engine.QueryStale("visitView", q));
  const double truth =
      Val(ExactAggregate(Val(engine.ComputeFreshView("visitView")), q));

  SvcQueryOptions aqp_opts;
  aqp_opts.mode = EstimatorMode::kAqp;
  aqp_opts.ratio = 0.10;
  SvcAnswer aqp = Val(engine.Query("visitView", q, aqp_opts));

  SvcQueryOptions corr_opts;
  corr_opts.mode = EstimatorMode::kCorr;
  corr_opts.ratio = 0.10;
  SvcAnswer corr = Val(engine.Query("visitView", q, corr_opts));

  std::printf("\nhow many videos have more than 100 visits?\n");
  std::printf("  truth (fresh view) : %.0f\n", truth);
  std::printf("  stale view         : %.0f   (error %.1f%%)\n", stale,
              100 * std::fabs(stale - truth) / truth);
  std::printf("  SVC+AQP-10%%        : %.1f   [%.1f, %.1f] 95%% CI\n",
              aqp.estimate.value, aqp.estimate.ci_low, aqp.estimate.ci_high);
  std::printf("  SVC+CORR-10%%       : %.1f   [%.1f, %.1f] 95%% CI\n",
              corr.estimate.value, corr.estimate.ci_low,
              corr.estimate.ci_high);

  // ---- 5. Periodic maintenance catches the view up ----------------------------
  Check(engine.MaintainAll());
  std::printf("\nafter MaintainAll: exact answer = %.0f (stale? %s)\n",
              Val(engine.QueryStale("visitView", q)),
              engine.IsStale() ? "yes" : "no");
  return 0;
}
