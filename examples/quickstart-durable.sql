-- Durable quickstart: the SVC lifecycle on a --data-dir engine. Every
-- write is WAL-logged before it publishes; CHECKPOINT persists a snapshot
-- and truncates the log behind it (docs/ARCHITECTURE.md, "Durability &
-- recovery"). Run with:
--   ./build/svc_shell --data-dir /tmp/svc-data --echo \
--     --file examples/quickstart-durable.sql
-- Recovery details print on stderr, so this stdout transcript is
-- reproducible (the golden test wipes its data dir first).

CREATE TABLE Video (videoId INT, ownerId INT, duration DOUBLE,
                    PRIMARY KEY (videoId));
CREATE TABLE Log (sessionId INT, videoId INT, PRIMARY KEY (sessionId));
INSERT INTO Video VALUES (1, 101, 1.5), (2, 102, 0.8), (3, 100, 2.5);
INSERT INTO Log VALUES (0, 1), (1, 1), (2, 2), (3, 3), (4, 3), (5, 3);
REFRESH ALL;

CREATE MATERIALIZED VIEW visitView AS
  SELECT Log.videoId, COUNT(1) AS visitCount
  FROM Log, Video WHERE Log.videoId = Video.videoId
  GROUP BY Log.videoId;

-- Stream new visits: the view goes stale; the deltas are in the WAL.
INSERT INTO Log VALUES (100, 2), (101, 2), (102, 1), (103, 3);

-- SVC corrects the stale answer (reads are never logged).
SELECT SUM(visitCount) FROM visitView WITH SVC(ratio=0.5, mode=corr);

-- Durability counters: every write so far sits in the current WAL segment.
SHOW STATS;

-- CHECKPOINT writes the snapshot atomically and rotates to an empty WAL.
CHECKPOINT;
SHOW STATS;

-- Maintenance commits the deltas (logged like any other write).
REFRESH VIEW visitView;
SELECT videoId, visitCount FROM visitView;
SHOW STATS;
