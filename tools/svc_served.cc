// svc_served — the SVC network server.
//
// Serves the SQL engine over a socket speaking the framed binary protocol
// (docs/PROTOCOL.md): N client connections are multiplexed onto a worker
// pool over one SharedEngine, so every connection sees snapshot-isolated
// statements exactly like concurrent in-process sessions — transcripts
// over the wire are bit-identical to `svc_shell --shared`.
//
// Usage:
//   svc_served --port 7878                 serve on 127.0.0.1:7878
//   svc_served --port 0 --port-file p.txt  ephemeral port, written to p.txt
//   svc_served --host 0.0.0.0 ...          listen address
//   svc_served --workers N                 statement worker threads
//   svc_served --max-inflight N            admission-control limit
//   svc_served --data-dir <dir>            durable engine (WAL + recovery)
//   svc_served --shards <n>                sharded engine (scatter-gather)
//   svc_served --fsync <p> / --checkpoint-every N   as in svc_shell
//   svc_served --degrade                   graceful degradation: past
//                                          --max-inflight, WITH SVC queries
//                                          run at a reduced sampling ratio
//                                          (flagged degraded) instead of
//                                          being rejected
//   svc_served --degrade-max-inflight N    degraded-mode admission ceiling
//                                          (default 4 * --max-inflight)
//   svc_served --degrade-scale <s>         degraded sampling-ratio
//                                          multiplier in (0, 1), default 0.5
//
// SIGINT/SIGTERM shut down gracefully (durable mode checkpoints first).

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/sharded_engine.h"
#include "core/shared_engine.h"
#include "server/server.h"
#include "storage/durable_engine.h"

namespace {

int g_shutdown_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char b = 1;
  ssize_t ignored = write(g_shutdown_pipe[1], &b, 1);
  (void)ignored;
}

int Usage(const char* argv0, int rc) {
  std::fprintf(rc == 0 ? stdout : stderr,
               "usage: %s [--host <addr>] [--port <n>] [--port-file <path>]\n"
               "          [--workers <n>] [--max-inflight <n>]\n"
               "          [--data-dir <dir>] [--shards <n>]\n"
               "          [--fsync always|off|every=N] "
               "[--checkpoint-every <n>]\n"
               "          [--degrade] [--degrade-max-inflight <n>] "
               "[--degrade-scale <s>]\n",
               argv0);
  return rc;
}

bool ParseCount(const char* v, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(v, &end, 10);
  return end != v && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  svc::ServerOptions opts;
  opts.port = 7878;
  std::string port_file;
  int num_shards = 0;  // 0 = not sharded
  svc::DurableOptions durable_opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    const char* v = nullptr;
    uint64_t n = 0;
    if (std::strcmp(arg, "--host") == 0) {
      if (!value_of(&v)) return Usage(argv[0], 2);
      opts.host = v;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!value_of(&v) || !ParseCount(v, &n) || n > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return Usage(argv[0], 2);
      }
      opts.port = static_cast<uint16_t>(n);
    } else if (std::strcmp(arg, "--port-file") == 0) {
      if (!value_of(&v)) return Usage(argv[0], 2);
      port_file = v;
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!value_of(&v) || !ParseCount(v, &n) || n == 0) {
        std::fprintf(stderr, "error: --workers expects a positive count\n");
        return Usage(argv[0], 2);
      }
      opts.workers = static_cast<int>(n);
    } else if (std::strcmp(arg, "--max-inflight") == 0) {
      if (!value_of(&v) || !ParseCount(v, &n) || n == 0) {
        std::fprintf(stderr,
                     "error: --max-inflight expects a positive count\n");
        return Usage(argv[0], 2);
      }
      opts.max_inflight = static_cast<uint32_t>(n);
    } else if (std::strcmp(arg, "--data-dir") == 0) {
      if (!value_of(&v)) return Usage(argv[0], 2);
      durable_opts.data_dir = v;
    } else if (std::strcmp(arg, "--shards") == 0) {
      if (!value_of(&v) || !ParseCount(v, &n) || n == 0 || n > 64) {
        std::fprintf(stderr, "error: --shards expects a count in 1..64\n");
        return Usage(argv[0], 2);
      }
      num_shards = static_cast<int>(n);
    } else if (std::strcmp(arg, "--fsync") == 0) {
      if (!value_of(&v)) return Usage(argv[0], 2);
      auto parsed = svc::ParseFsyncSpec(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return Usage(argv[0], 2);
      }
      durable_opts.wal = *parsed;
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      if (!value_of(&v) || !ParseCount(v, &n)) {
        std::fprintf(stderr, "error: --checkpoint-every expects a count\n");
        return Usage(argv[0], 2);
      }
      durable_opts.checkpoint_every = n;
    } else if (std::strcmp(arg, "--degrade") == 0) {
      opts.degrade = true;
    } else if (std::strcmp(arg, "--degrade-max-inflight") == 0) {
      if (!value_of(&v) || !ParseCount(v, &n) || n == 0) {
        std::fprintf(
            stderr,
            "error: --degrade-max-inflight expects a positive count\n");
        return Usage(argv[0], 2);
      }
      opts.degrade_max_inflight = static_cast<uint32_t>(n);
    } else if (std::strcmp(arg, "--degrade-scale") == 0) {
      if (!value_of(&v)) return Usage(argv[0], 2);
      char* end = nullptr;
      const double s = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(s > 0.0) || !(s < 1.0)) {
        std::fprintf(stderr, "error: --degrade-scale expects s in (0, 1)\n");
        return Usage(argv[0], 2);
      }
      opts.degrade_ratio_scale = s;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return Usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0], 2);
    }
  }

  if (num_shards > 0 && !durable_opts.data_dir.empty()) {
    std::fprintf(stderr,
                 "error: --shards is in-memory scatter-gather; it does not "
                 "combine with --data-dir\n");
    return Usage(argv[0], 2);
  }

  // Engine: durable when --data-dir is given (recover first), sharded when
  // --shards is given, otherwise a fresh in-memory shared engine.
  std::shared_ptr<svc::DurableEngine> durable_engine;
  std::shared_ptr<svc::ShardedEngine> sharded_engine;
  std::shared_ptr<svc::SharedEngine> shared_engine;
  std::unique_ptr<svc::SvcServer> server;
  if (num_shards > 0) {
    sharded_engine =
        std::make_shared<svc::ShardedEngine>(svc::Database(), num_shards);
    server = std::make_unique<svc::SvcServer>(opts, sharded_engine);
  } else if (!durable_opts.data_dir.empty()) {
    svc::RecoveryReport report;
    auto opened = svc::DurableEngine::Open(durable_opts, &report);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: cannot open %s: %s\n",
                   durable_opts.data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    durable_engine = std::move(opened).value();
    if (!report.warning.empty()) {
      std::fprintf(stderr, "warning: %s\n", report.warning.c_str());
    }
    std::fprintf(stderr,
                 "recovered %s at epoch %llu (checkpoint %llu + %llu WAL "
                 "record(s))\n",
                 durable_opts.data_dir.c_str(),
                 static_cast<unsigned long long>(report.recovered_epoch),
                 static_cast<unsigned long long>(report.checkpoint_epoch),
                 static_cast<unsigned long long>(report.wal_records_replayed));
    server = std::make_unique<svc::SvcServer>(opts, durable_engine);
  } else {
    shared_engine = std::make_shared<svc::SharedEngine>(svc::Database());
    server = std::make_unique<svc::SvcServer>(opts, shared_engine);
  }

  // The maintenance scheduler starts with the server but idles until a
  // client arms it with SET MAINTENANCE POLICY (mode=auto, ...).
  if (durable_engine != nullptr) durable_engine->StartMaintenance();
  if (sharded_engine != nullptr) sharded_engine->StartMaintenance();
  if (shared_engine != nullptr) shared_engine->StartMaintenance();

  if (pipe(g_shutdown_pipe) < 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  const svc::Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "svc_served listening on %s:%u (%d worker(s))\n",
               opts.host.c_str(), server->port(), opts.workers);
  if (!port_file.empty()) {
    // Written atomically (tmp + rename) so a watcher never reads a
    // half-written port number.
    const std::string tmp = port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server->port());
    std::fclose(f);
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::perror("rename port file");
      return 1;
    }
  }

  // Block until SIGINT/SIGTERM.
  char b;
  while (read(g_shutdown_pipe[0], &b, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "shutting down\n");
  server->Stop();

  // Quiesce the maintenance scheduler before the clean-exit checkpoint: a
  // background refresh landing after the checkpoint would leave trailing
  // WAL records, defeating the replay-nothing contract below.
  if (durable_engine != nullptr) durable_engine->StopMaintenance();
  if (sharded_engine != nullptr) sharded_engine->StopMaintenance();
  if (shared_engine != nullptr) shared_engine->StopMaintenance();

  // Durable mode: checkpoint on clean exit so the next startup replays
  // nothing (same contract as svc_shell).
  if (durable_engine != nullptr) {
    auto ckpt = durable_engine->Checkpoint();
    if (!ckpt.ok()) {
      std::fprintf(stderr, "error: final checkpoint failed: %s\n",
                   ckpt.status().ToString().c_str());
      return 1;
    }
  }
  return 0;
}
