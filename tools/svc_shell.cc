// svc_shell — the SQL serving-layer REPL / batch runner.
//
// The whole SVC lifecycle (paper §3.2) is scriptable as SQL: CREATE TABLE,
// INSERT (delta ingestion), CREATE MATERIALIZED VIEW, SELECT ... WITH
// SVC(...) for bounded-error answers on stale views, REFRESH for the
// maintenance commit. See examples/quickstart.sql and docs/ARCHITECTURE.md.
//
// Usage:
//   svc_shell                      interactive REPL on stdin
//   svc_shell --file script.sql    run a script (batch mode)
//   svc_shell -c "SELECT ...;"     run statements from the command line
//   svc_shell --echo --file f.sql  echo each statement (transcript mode)
//   svc_shell --keep-going         continue past statement errors
//   svc_shell --shared             run on a snapshot-isolated SharedEngine
//                                  (statement semantics are identical; this
//                                  exercises the multi-session engine mode)
//   svc_shell --shards <n>         run on a ShardedEngine with n shards
//                                  (scatter-gather serving; answers are
//                                  bit-identical at every shard count)
//   svc_shell --data-dir <dir>     durable mode: recover <dir> at startup,
//                                  WAL every write, checkpoint on clean exit
//   svc_shell --fsync <p>          WAL fsync policy: always | off | every=N
//   svc_shell --checkpoint-every N auto-checkpoint after N logged commits
//   svc_shell --connect host:port  run the same statements against a
//                                  remote svc_served over the wire protocol
//                                  (transcripts are bit-identical to local)
//   svc_shell --retry <n>          with --connect: retry retryable failures
//                                  up to n times (reconnect + idempotent
//                                  re-send; writes commit exactly once)
//   svc_shell --deadline-ms <n>    with --connect: attach a server-side
//                                  deadline of n ms to every statement
//   svc_shell --recv-timeout-ms <n>  with --connect: bound each response
//                                  wait (default 10000; 0 = forever)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/sharded_engine.h"
#include "core/shared_engine.h"
#include "server/client.h"
#include "shell/shell.h"
#include "storage/durable_engine.h"

namespace {

int Usage(const char* argv0, int rc) {
  std::fprintf(rc == 0 ? stdout : stderr,
               "usage: %s [--file <script.sql>] [-c <sql>] [--echo] "
               "[--keep-going] [--shared] [--shards <n>]\n"
               "          [--data-dir <dir>] [--fsync always|off|every=N] "
               "[--checkpoint-every <n>]\n"
               "          [--connect <host:port>] [--retry <n>] "
               "[--deadline-ms <n>] [--recv-timeout-ms <n>]\n"
               "  no arguments: interactive shell (statements end with ';')\n",
               argv0);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string inline_sql;
  bool has_file = false;
  bool has_inline = false;
  bool shared = false;
  int num_shards = 0;  // 0 = not sharded
  std::string connect;
  int retries = 0;
  uint32_t deadline_ms = 0;
  int recv_timeout_ms = 10000;
  bool has_client_flag = false;
  svc::DurableOptions durable_opts;
  svc::ShellOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (std::strcmp(arg, "--file") == 0 || std::strcmp(arg, "-c") == 0) {
      const char* v = nullptr;
      if (!value_of(&v)) return Usage(argv[0], 2);
      if (arg[1] == 'c') {
        inline_sql = v;
        has_inline = true;
      } else {
        file = v;
        has_file = true;
      }
    } else if (std::strcmp(arg, "--echo") == 0) {
      opts.echo = true;
    } else if (std::strcmp(arg, "--keep-going") == 0) {
      opts.keep_going = true;
    } else if (std::strcmp(arg, "--shared") == 0) {
      shared = true;
    } else if (std::strcmp(arg, "--shards") == 0) {
      const char* v = nullptr;
      if (!value_of(&v)) return Usage(argv[0], 2);
      char* end = nullptr;
      const unsigned long n = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || n == 0 || n > 64) {
        std::fprintf(stderr, "error: --shards expects a count in 1..64\n");
        return Usage(argv[0], 2);
      }
      num_shards = static_cast<int>(n);
    } else if (std::strcmp(arg, "--connect") == 0) {
      const char* v = nullptr;
      if (!value_of(&v)) return Usage(argv[0], 2);
      connect = v;
    } else if (std::strcmp(arg, "--retry") == 0 ||
               std::strcmp(arg, "--deadline-ms") == 0 ||
               std::strcmp(arg, "--recv-timeout-ms") == 0) {
      const char* v = nullptr;
      if (!value_of(&v)) return Usage(argv[0], 2);
      char* end = nullptr;
      const unsigned long n = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || n > 1000000000UL) {
        std::fprintf(stderr, "error: %s expects a count\n", arg);
        return Usage(argv[0], 2);
      }
      if (std::strcmp(arg, "--retry") == 0) {
        retries = static_cast<int>(n);
      } else if (std::strcmp(arg, "--deadline-ms") == 0) {
        deadline_ms = static_cast<uint32_t>(n);
      } else {
        recv_timeout_ms = static_cast<int>(n);
      }
      has_client_flag = true;
    } else if (std::strcmp(arg, "--data-dir") == 0) {
      const char* v = nullptr;
      if (!value_of(&v)) return Usage(argv[0], 2);
      durable_opts.data_dir = v;
    } else if (std::strcmp(arg, "--fsync") == 0) {
      const char* v = nullptr;
      if (!value_of(&v)) return Usage(argv[0], 2);
      auto parsed = svc::ParseFsyncSpec(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return Usage(argv[0], 2);
      }
      durable_opts.wal = *parsed;
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      const char* v = nullptr;
      if (!value_of(&v)) return Usage(argv[0], 2);
      char* end = nullptr;
      durable_opts.checkpoint_every = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "error: --checkpoint-every expects a count\n");
        return Usage(argv[0], 2);
      }
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return Usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0], 2);
    }
  }

  // Fail fast on conflicting or empty batch modes instead of silently
  // dropping one (or falling through to a stdin read that blocks).
  if (has_file && has_inline) {
    std::fprintf(stderr, "error: --file and -c are mutually exclusive\n");
    return Usage(argv[0], 2);
  }
  if ((has_file && file.empty()) || (has_inline && inline_sql.empty())) {
    std::fprintf(stderr, "error: %s requires a non-empty value\n",
                 has_file ? "--file" : "-c");
    return Usage(argv[0], 2);
  }
  const bool durable = !durable_opts.data_dir.empty();
  if ((durable_opts.wal.policy != svc::FsyncPolicy::kAlways ||
       durable_opts.checkpoint_every != 0) &&
      !durable) {
    std::fprintf(stderr,
                 "error: --fsync / --checkpoint-every require --data-dir\n");
    return Usage(argv[0], 2);
  }
  if (!connect.empty() && (shared || durable || num_shards > 0)) {
    std::fprintf(stderr,
                 "error: --connect is remote; --shared / --shards / "
                 "--data-dir pick a local engine\n");
    return Usage(argv[0], 2);
  }
  if (has_client_flag && connect.empty()) {
    std::fprintf(stderr,
                 "error: --retry / --deadline-ms / --recv-timeout-ms "
                 "require --connect\n");
    return Usage(argv[0], 2);
  }
  if (num_shards > 0 && (shared || durable)) {
    std::fprintf(stderr,
                 "error: --shards is its own engine mode; it does not "
                 "combine with --shared or --data-dir\n");
    return Usage(argv[0], 2);
  }

  // Durable mode: recover (or initialize) the data directory, then run the
  // session on the recovered engine. Recovery details go to stderr so
  // transcripts (stdout) stay reproducible.
  std::shared_ptr<svc::DurableEngine> durable_engine;
  if (durable) {
    svc::RecoveryReport report;
    auto opened = svc::DurableEngine::Open(durable_opts, &report);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: cannot open %s: %s\n",
                   durable_opts.data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    durable_engine = std::move(opened).value();
    if (!report.warning.empty()) {
      std::fprintf(stderr, "warning: %s\n", report.warning.c_str());
    }
    std::fprintf(stderr,
                 "recovered %s at epoch %llu (checkpoint %llu + %llu WAL "
                 "record(s))\n",
                 durable_opts.data_dir.c_str(),
                 static_cast<unsigned long long>(report.recovered_epoch),
                 static_cast<unsigned long long>(report.checkpoint_epoch),
                 static_cast<unsigned long long>(report.wal_records_replayed));
  }

  // The shell drives any SqlExecutor: a local SqlSession over whichever
  // EngineHandle the flags picked, or a SvcClient speaking the wire
  // protocol to a remote svc_served. --shared runs the identical statement
  // stream on a SharedEngine: this single session is the degenerate case of
  // many concurrent sessions, so transcripts (e.g. the quickstart golden)
  // must match private mode. --data-dir implies shared-mode semantics on
  // the recovered engine.
  std::unique_ptr<svc::SqlExecutor> executor;
  std::shared_ptr<svc::ShardedEngine> sharded_engine;
  std::shared_ptr<svc::SharedEngine> shared_engine;
  if (!connect.empty()) {
    const size_t colon = connect.rfind(':');
    char* end = nullptr;
    const unsigned long port =
        colon == std::string::npos
            ? 0
            : std::strtoul(connect.c_str() + colon + 1, &end, 10);
    if (colon == std::string::npos || colon == 0 || end == nullptr ||
        *end != '\0' || port == 0 || port > 65535) {
      std::fprintf(stderr, "error: --connect expects host:port, got %s\n",
                   connect.c_str());
      return Usage(argv[0], 2);
    }
    svc::ClientOptions copts;
    copts.host = connect.substr(0, colon);
    copts.port = static_cast<uint16_t>(port);
    copts.client_name = "svc_shell";
    copts.max_retries = retries;
    copts.deadline_ms = deadline_ms;
    copts.recv_timeout_ms = recv_timeout_ms;
    auto connected = svc::SvcClient::Connect(copts);
    if (!connected.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    executor = std::move(connected).value();
  } else {
    svc::EngineHandle handle = svc::EngineHandle::Private();
    if (durable) {
      handle = svc::EngineHandle::Durable(durable_engine);
    } else if (num_shards > 0) {
      sharded_engine =
          std::make_shared<svc::ShardedEngine>(svc::Database(), num_shards);
      handle = svc::EngineHandle::Sharded(sharded_engine);
    } else if (shared) {
      shared_engine = std::make_shared<svc::SharedEngine>(svc::Database());
      handle = svc::EngineHandle::Shared(shared_engine);
    }
    executor = std::make_unique<svc::SqlSession>(std::move(handle));
    // The scheduler thread starts now but idles (mode=off is the default)
    // until a SET MAINTENANCE POLICY (mode=auto, ...) statement arms it —
    // so transcripts without that statement stay byte-identical.
    if (durable_engine != nullptr) durable_engine->StartMaintenance();
    if (sharded_engine != nullptr) sharded_engine->StartMaintenance();
    if (shared_engine != nullptr) shared_engine->StartMaintenance();
  }
  svc::Shell shell(executor.get(), &std::cout, opts);

  // On a clean exit, checkpoint so the next startup replays nothing. A
  // checkpoint failure is a real error (the WAL still has everything, but
  // the exit code must say durability degraded).
  auto finish = [&](int rc) {
    // Quiesce the maintenance scheduler first: a background refresh after
    // the final checkpoint would leave trailing WAL records (and the
    // fault-injector's maint.refresh site must not fire mid-exit).
    if (durable_engine != nullptr) durable_engine->StopMaintenance();
    if (sharded_engine != nullptr) sharded_engine->StopMaintenance();
    if (shared_engine != nullptr) shared_engine->StopMaintenance();
    if (durable_engine != nullptr && rc == 0) {
      auto ckpt = durable_engine->Checkpoint();
      if (!ckpt.ok()) {
        std::fprintf(stderr, "error: final checkpoint failed: %s\n",
                     ckpt.status().ToString().c_str());
        return 1;
      }
    }
    return rc;
  };

  if (has_file) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    return finish(shell.RunScript(script.str()).ok() ? 0 : 1);
  }
  if (has_inline) {
    return finish(shell.RunScript(inline_sql).ok() ? 0 : 1);
  }
  // REPL: prompts only when stdin is a terminal, so piped input produces
  // clean output.
  const bool tty = isatty(fileno(stdin)) != 0;
  if (tty) {
    std::cout << "svc_shell — SQL over Stale View Cleaning. Statements end "
                 "with ';'. Ctrl-D exits.\n";
  }
  return finish(shell.RunInteractive(std::cin, std::cout, tty).ok() ? 0 : 1);
}
