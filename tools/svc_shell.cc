// svc_shell — the SQL serving-layer REPL / batch runner.
//
// The whole SVC lifecycle (paper §3.2) is scriptable as SQL: CREATE TABLE,
// INSERT (delta ingestion), CREATE MATERIALIZED VIEW, SELECT ... WITH
// SVC(...) for bounded-error answers on stale views, REFRESH for the
// maintenance commit. See examples/quickstart.sql and docs/ARCHITECTURE.md.
//
// Usage:
//   svc_shell                      interactive REPL on stdin
//   svc_shell --file script.sql    run a script (batch mode)
//   svc_shell -c "SELECT ...;"     run statements from the command line
//   svc_shell --echo --file f.sql  echo each statement (transcript mode)
//   svc_shell --keep-going         continue past statement errors
//   svc_shell --shared             run on a snapshot-isolated SharedEngine
//                                  (statement semantics are identical; this
//                                  exercises the multi-session engine mode)

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/shared_engine.h"
#include "shell/shell.h"

namespace {

int Usage(const char* argv0, int rc) {
  std::fprintf(rc == 0 ? stdout : stderr,
               "usage: %s [--file <script.sql>] [-c <sql>] [--echo] "
               "[--keep-going] [--shared]\n"
               "  no arguments: interactive shell (statements end with ';')\n",
               argv0);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string inline_sql;
  bool has_file = false;
  bool has_inline = false;
  bool shared = false;
  svc::ShellOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--file") == 0 || std::strcmp(arg, "-c") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg);
        return Usage(argv[0], 2);
      }
      if (arg[1] == 'c') {
        inline_sql = argv[++i];
        has_inline = true;
      } else {
        file = argv[++i];
        has_file = true;
      }
    } else if (std::strcmp(arg, "--echo") == 0) {
      opts.echo = true;
    } else if (std::strcmp(arg, "--keep-going") == 0) {
      opts.keep_going = true;
    } else if (std::strcmp(arg, "--shared") == 0) {
      shared = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return Usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0], 2);
    }
  }

  // Fail fast on conflicting or empty batch modes instead of silently
  // dropping one (or falling through to a stdin read that blocks).
  if (has_file && has_inline) {
    std::fprintf(stderr, "error: --file and -c are mutually exclusive\n");
    return Usage(argv[0], 2);
  }
  if ((has_file && file.empty()) || (has_inline && inline_sql.empty())) {
    std::fprintf(stderr, "error: %s requires a non-empty value\n",
                 has_file ? "--file" : "-c");
    return Usage(argv[0], 2);
  }

  // --shared runs the identical statement stream on a SharedEngine: this
  // single session is the degenerate case of many concurrent sessions, so
  // transcripts (e.g. the quickstart golden) must match private mode.
  svc::SqlSession session =
      shared ? svc::SqlSession(
                   std::make_shared<svc::SharedEngine>(svc::Database()))
             : svc::SqlSession();
  svc::Shell shell(&session, &std::cout, opts);

  if (has_file) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    return shell.RunScript(script.str()).ok() ? 0 : 1;
  }
  if (has_inline) {
    return shell.RunScript(inline_sql).ok() ? 0 : 1;
  }
  // REPL: prompts only when stdin is a terminal, so piped input produces
  // clean output.
  const bool tty = isatty(fileno(stdin)) != 0;
  if (tty) {
    std::cout << "svc_shell — SQL over Stale View Cleaning. Statements end "
                 "with ';'. Ctrl-D exits.\n";
  }
  return shell.RunInteractive(std::cin, std::cout, tty).ok() ? 0 : 1;
}
