#include <gtest/gtest.h>

#include "relational/executor.h"
#include "relational/keys.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

class KeysTest : public ::testing::Test {
 protected:
  KeysTest() : db_(MakeLogVideoDb()) {}
  Database db_;
};

TEST_F(KeysTest, ScanUsesBaseKey) {
  PlanPtr p = PlanNode::Scan("Log", "l");
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"l.sessionId"}));
}

TEST_F(KeysTest, ScanWithoutKeyFails) {
  Table t(Schema({{"", "x", ValueType::kInt}}));
  db_.PutTable("NoKey", std::move(t));
  PlanPtr p = PlanNode::Scan("NoKey");
  EXPECT_FALSE(DerivePrimaryKeys(p.get(), db_).ok());
}

TEST_F(KeysTest, AddSequencePrimaryKey) {
  Table t(Schema({{"", "x", ValueType::kInt}}));
  t.AppendUnchecked({Value::Int(5)});
  t.AppendUnchecked({Value::Int(5)});  // duplicate content is fine
  SVC_ASSERT_OK(AddSequencePrimaryKey(&t, "rid"));
  EXPECT_TRUE(t.HasPrimaryKey());
  EXPECT_EQ(t.schema().NumColumns(), 2u);
  EXPECT_EQ(t.row(0)[1], Value::Int(0));
  EXPECT_EQ(t.row(1)[1], Value::Int(1));
  db_.PutTable("Seq", std::move(t));
  PlanPtr p = PlanNode::Scan("Seq");
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"Seq.rid"}));
}

TEST_F(KeysTest, SelectPreservesKey) {
  PlanPtr p = PlanNode::Select(PlanNode::Scan("Log", "l"),
                               Expr::Gt(Expr::Col("videoId"),
                                        Expr::LitInt(1)));
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"l.sessionId"}));
}

TEST_F(KeysTest, ProjectKeepsRenamedKey) {
  PlanPtr p = PlanNode::Project(
      PlanNode::Scan("Log", "l"),
      {{"sid", Expr::Col("l.sessionId"), ""},
       {"vid2", Expr::Mul(Expr::Col("videoId"), Expr::LitInt(2)), ""}});
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"sid"}));
}

TEST_F(KeysTest, ProjectDroppingKeyFails) {
  PlanPtr p = PlanNode::Project(PlanNode::Scan("Log", "l"),
                                {{"vid", Expr::Col("videoId"), ""}});
  auto r = DerivePrimaryKeys(p.get(), db_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(KeysTest, ProjectTransformingKeyFails) {
  // A transformed key column (the paper's V22 situation) is not a pure
  // reference and therefore does not preserve the key.
  PlanPtr p = PlanNode::Project(
      PlanNode::Scan("Log", "l"),
      {{"sid", Expr::Add(Expr::Col("l.sessionId"), Expr::LitInt(1)), ""}});
  EXPECT_FALSE(DerivePrimaryKeys(p.get(), db_).ok());
}

TEST_F(KeysTest, JoinConcatenatesKeys) {
  PlanPtr p = PlanNode::Join(PlanNode::Scan("Log", "l"),
                             PlanNode::Scan("Video", "v"), JoinType::kInner,
                             {{"l.videoId", "v.videoId"}});
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"l.sessionId", "v.videoId"}));
}

TEST_F(KeysTest, AggregateKeyIsGroupBy) {
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}});
  PlanPtr p = PlanNode::Aggregate(std::move(join), {"l.videoId"},
                                  {{AggFunc::kCountStar, nullptr, "c"}});
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"l.videoId"}));
}

TEST_F(KeysTest, GlobalAggregateHasNoKey) {
  PlanPtr p = PlanNode::Aggregate(PlanNode::Scan("Log"), {},
                                  {{AggFunc::kCountStar, nullptr, "c"}});
  EXPECT_FALSE(DerivePrimaryKeys(p.get(), db_).ok());
}

TEST_F(KeysTest, UnionOfKeysIsAttributeUnion) {
  PlanPtr a = PlanNode::Scan("Log", "l");
  PlanPtr b = PlanNode::Scan("Log", "l");
  PlanPtr p = PlanNode::Union(std::move(a), std::move(b));
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"l.sessionId"}));
}

TEST_F(KeysTest, DifferenceUsesLeftKey) {
  PlanPtr p = PlanNode::Difference(PlanNode::Scan("Log", "a"),
                                   PlanNode::Scan("Log", "a"));
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"a.sessionId"}));
}

TEST_F(KeysTest, HashFilterPreservesKey) {
  PlanPtr p = PlanNode::HashFilter(PlanNode::Scan("Log", "l"), {"videoId"},
                                   0.5, HashFamily::kFnv1a);
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
  EXPECT_EQ(pk, (std::vector<std::string>{"l.sessionId"}));
}

TEST_F(KeysTest, DerivedKeyIsActuallyUnique) {
  // Property: executing any plan with a derived key yields key-unique rows.
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}});
  PlanPtr agg = PlanNode::Aggregate(join->Clone(), {"l.videoId"},
                                    {{AggFunc::kCountStar, nullptr, "c"}});
  for (PlanPtr p : {join, agg}) {
    SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(p.get(), db_));
    SVC_ASSERT_OK_AND_ASSIGN(Table t, ExecutePlan(*p, db_));
    SVC_ASSERT_OK(t.SetPrimaryKey(pk));  // fails on duplicates
  }
}

TEST_F(KeysTest, PaperExampleFigure2) {
  // Figure 2: γ_videoId(Log ⋈ Video) — join key (sessionId, videoId), view
  // key videoId.
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "Log"),
                                PlanNode::Scan("Video", "Video"),
                                JoinType::kInner,
                                {{"Log.videoId", "Video.videoId"}});
  SVC_ASSERT_OK_AND_ASSIGN(auto join_pk, DerivePrimaryKeys(join.get(), db_));
  EXPECT_EQ(join_pk,
            (std::vector<std::string>{"Log.sessionId", "Video.videoId"}));
  PlanPtr view = PlanNode::Aggregate(std::move(join), {"Log.videoId"},
                                     {{AggFunc::kCountStar, nullptr,
                                       "visitCount"}});
  SVC_ASSERT_OK_AND_ASSIGN(auto view_pk, DerivePrimaryKeys(view.get(), db_));
  EXPECT_EQ(view_pk, (std::vector<std::string>{"Log.videoId"}));
}

}  // namespace
}  // namespace svc
