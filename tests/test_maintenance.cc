#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "relational/executor.h"
#include "tests/test_util.h"
#include "view/maintenance.h"
#include "view/staleness.h"

namespace svc {
namespace {

using testing_util::ExpectTablesEquivalent;
using testing_util::MakeLogVideoDb;

Database CloneDb(const Database& db) {
  Database out;
  for (const auto& name : db.TableNames()) {
    out.PutTable(name, *db.GetTable(name).value());
  }
  return out;
}

/// The paper's visitView (aggregate class).
PlanPtr VisitViewDef() {
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}}, nullptr, true);
  return PlanNode::Aggregate(
      std::move(join), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "visitCount"},
       {AggFunc::kSum, Expr::Col("v.duration"), "totalDur"},
       {AggFunc::kAvg, Expr::Col("v.duration"), "avgDur"}});
}

/// An SPJ view over the join (no aggregation).
PlanPtr SpjViewDef() {
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}}, nullptr, true);
  return PlanNode::Select(std::move(join),
                          Expr::Gt(Expr::Col("v.duration"),
                                   Expr::LitDouble(0.4)));
}

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest() : db_(MakeLogVideoDb()) {}

  /// Runs the maintenance plan and checks the result equals the truly fresh
  /// view (deltas committed, definition re-materialized from scratch).
  void CheckMaintenance(const std::string& name, PlanPtr def,
                        DeltaSet* deltas,
                        MaintenanceKind expected_kind) {
    SVC_ASSERT_OK_AND_ASSIGN(
        MaterializedView view,
        MaterializedView::Create(name, def->Clone(), &db_));

    SVC_ASSERT_OK(deltas->Register(&db_));
    SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                             BuildMaintenancePlan(view, *deltas, db_));
    EXPECT_EQ(static_cast<int>(plan.kind), static_cast<int>(expected_kind));
    SVC_ASSERT_OK(ApplyMaintenance(view, plan, &db_));
    SVC_ASSERT_OK_AND_ASSIGN(const Table* maintained, db_.GetTable(name));

    // Oracle: commit the deltas in a cloned database and re-materialize.
    Database oracle_db = CloneDb(db_);
    SVC_ASSERT_OK(oracle_db.DropTable(name));
    DeltaSet copy = *deltas;
    SVC_ASSERT_OK(copy.ApplyToBase(&oracle_db));
    SVC_ASSERT_OK_AND_ASSIGN(
        MaterializedView fresh,
        MaterializedView::Create(name, def->Clone(), &oracle_db));
    SVC_ASSERT_OK_AND_ASSIGN(const Table* expected,
                             oracle_db.GetTable(name));
    ExpectTablesEquivalent(*maintained, *expected);
  }

  Database db_;
};

TEST_F(MaintenanceTest, NoDeltasIsNoOp) {
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db_));
  DeltaSet deltas;
  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                           BuildMaintenancePlan(view, deltas, db_));
  EXPECT_EQ(static_cast<int>(plan.kind),
            static_cast<int>(MaintenanceKind::kNoOp));
  SVC_ASSERT_OK(ApplyMaintenance(view, plan, &db_));
}

TEST_F(MaintenanceTest, UnrelatedDeltaIsNoOp) {
  Table other(Schema({{"", "id", ValueType::kInt}}));
  SVC_ASSERT_OK(other.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(db_.CreateTable("Other", std::move(other)));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db_));
  DeltaSet deltas;
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Other", {Value::Int(1)}));
  SVC_ASSERT_OK(deltas.Register(&db_));
  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                           BuildMaintenancePlan(view, deltas, db_));
  EXPECT_EQ(static_cast<int>(plan.kind),
            static_cast<int>(MaintenanceKind::kNoOp));
}

TEST_F(MaintenanceTest, AggregateViewInsertOnly) {
  DeltaSet deltas;
  // New sessions: more visits to video 2 plus first visits to video 4
  // (a *missing row* in the stale view).
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(100),
                                              Value::Int(2)}));
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(101),
                                              Value::Int(4)}));
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(102),
                                              Value::Int(4)}));
  CheckMaintenance("vv", VisitViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, AggregateViewDeletes) {
  DeltaSet deltas;
  // Delete every visit to video 1 -> its view row becomes *superfluous*.
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(0), Value::Int(1)}));
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(1), Value::Int(1)}));
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(2), Value::Int(1)}));
  // And one visit to video 3 -> *incorrect* row.
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(5), Value::Int(3)}));
  CheckMaintenance("vv", VisitViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, AggregateViewUpdates) {
  DeltaSet deltas;
  // Session 9 moves from video 2 to video 3 (update = delete + insert).
  SVC_ASSERT_OK(deltas.AddUpdate(db_, "Log",
                                 {Value::Int(9), Value::Int(2)},
                                 {Value::Int(9), Value::Int(3)}));
  CheckMaintenance("vv", VisitViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, AggregateViewDimensionTableUpdate) {
  DeltaSet deltas;
  // Update a Video row (dimension side of the join).
  SVC_ASSERT_OK(deltas.AddUpdate(
      db_, "Video",
      {Value::Int(2), Value::Int(102), Value::Double(1.0)},
      {Value::Int(2), Value::Int(102), Value::Double(9.0)}));
  CheckMaintenance("vv", VisitViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, AggregateViewBothTablesChange) {
  DeltaSet deltas;
  // Exercises the cross term dL ⋈ dR: a new video and new visits to it.
  SVC_ASSERT_OK(deltas.AddInsert(
      db_, "Video",
      {Value::Int(9), Value::Int(200), Value::Double(3.25)}));
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(200),
                                              Value::Int(9)}));
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(201),
                                              Value::Int(9)}));
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(3), Value::Int(2)}));
  CheckMaintenance("vv", VisitViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, SpjViewInsertsAndDeletes) {
  DeltaSet deltas;
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(300),
                                              Value::Int(5)}));
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(6), Value::Int(3)}));
  CheckMaintenance("spjv", SpjViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, SpjViewUpdateChangesValueColumn) {
  DeltaSet deltas;
  // Update the duration of video 3: every SPJ row for video 3 changes
  // in place (same derived key, new value).
  SVC_ASSERT_OK(deltas.AddUpdate(
      db_, "Video",
      {Value::Int(3), Value::Int(100), Value::Double(1.5)},
      {Value::Int(3), Value::Int(100), Value::Double(7.5)}));
  CheckMaintenance("spjv", SpjViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, SpjViewRowLeavesSelection) {
  DeltaSet deltas;
  // Dropping video 2's duration below the predicate removes its rows.
  SVC_ASSERT_OK(deltas.AddUpdate(
      db_, "Video",
      {Value::Int(2), Value::Int(102), Value::Double(1.0)},
      {Value::Int(2), Value::Int(102), Value::Double(0.1)}));
  CheckMaintenance("spjv", SpjViewDef(), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, MinMaxViewInsertOnlyIsIncremental) {
  PlanPtr def = PlanNode::Aggregate(
      PlanNode::Scan("Log", "l"), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "c"},
       {AggFunc::kMin, Expr::Col("l.sessionId"), "firstSession"},
       {AggFunc::kMax, Expr::Col("l.sessionId"), "lastSession"}});
  DeltaSet deltas;
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(-5),
                                              Value::Int(2)}));
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(400),
                                              Value::Int(7)}));
  CheckMaintenance("mmv", std::move(def), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, MinMaxViewWithDeletesFallsBackToRecompute) {
  PlanPtr def = PlanNode::Aggregate(
      PlanNode::Scan("Log", "l"), {"l.videoId"},
      {{AggFunc::kMax, Expr::Col("l.sessionId"), "lastSession"}});
  DeltaSet deltas;
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(9), Value::Int(2)}));
  CheckMaintenance("mmv", std::move(def), &deltas,
                   MaintenanceKind::kRecompute);
}

TEST_F(MaintenanceTest, NestedAggregateViewUsesGenericDelta) {
  // V22-shaped view: distribution of visit counts,
  // γ_c(count) over γ_videoId(count).
  PlanPtr inner = PlanNode::Aggregate(
      PlanNode::Scan("Log", "l"), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "c"}});
  PlanPtr def = PlanNode::Aggregate(
      std::move(inner), {"c"},
      {{AggFunc::kCountStar, nullptr, "numVideos"}});
  DeltaSet deltas;
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(500),
                                              Value::Int(1)}));
  SVC_ASSERT_OK(deltas.AddDelete(db_, "Log", {Value::Int(5), Value::Int(3)}));
  CheckMaintenance("nested", std::move(def), &deltas,
                   MaintenanceKind::kChangeTable);
}

TEST_F(MaintenanceTest, UnionViewIsRecomputeOnly) {
  PlanPtr ids1 = PlanNode::Project(PlanNode::Scan("Log", "l"),
                                   {{"id", Expr::Col("l.sessionId"), ""}});
  PlanPtr ids2 = PlanNode::Project(
      PlanNode::Scan("Video", "v"),
      {{"id", Expr::Add(Expr::Col("v.videoId"), Expr::LitInt(1000)), ""}});
  // Give the arithmetic side its own key: videoId+1000 is not a pure ref,
  // so key it on a projected pure reference instead.
  ids2 = PlanNode::Project(
      PlanNode::Scan("Video", "v"),
      {{"id", Expr::Col("v.videoId"), ""}});
  PlanPtr def = PlanNode::Union(std::move(ids1), std::move(ids2));
  DeltaSet deltas;
  SVC_ASSERT_OK(deltas.AddInsert(db_, "Log", {Value::Int(600),
                                              Value::Int(1)}));
  CheckMaintenance("unionv", std::move(def), &deltas,
                   MaintenanceKind::kRecompute);
}

TEST_F(MaintenanceTest, SequentialMaintenancePeriods) {
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db_));
  Rng rng(99);
  int64_t next_session = 1000;
  for (int period = 0; period < 4; ++period) {
    DeltaSet deltas;
    for (int i = 0; i < 20; ++i) {
      SVC_ASSERT_OK(deltas.AddInsert(
          db_, "Log",
          {Value::Int(next_session++), Value::Int(rng.UniformInt(1, 6))}));
    }
    SVC_ASSERT_OK(deltas.Register(&db_));
    SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                             BuildMaintenancePlan(view, deltas, db_));
    SVC_ASSERT_OK(ApplyMaintenance(view, plan, &db_));
    SVC_ASSERT_OK(deltas.ApplyToBase(&db_));
  }
  // After all periods the maintained view equals a fresh materialization.
  Database oracle_db = CloneDb(db_);
  SVC_ASSERT_OK(oracle_db.DropTable("vv"));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView fresh,
      MaterializedView::Create("vv", VisitViewDef(), &oracle_db));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* got, db_.GetTable("vv"));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* want, oracle_db.GetTable("vv"));
  ExpectTablesEquivalent(*got, *want);
}

class RandomizedMaintenanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedMaintenanceTest, ChangeTableMatchesRecompute) {
  Rng rng(GetParam());
  Database db = MakeLogVideoDb();
  // Grow the base data.
  {
    SVC_ASSERT_OK_AND_ASSIGN(Table * log, db.GetMutableTable("Log"));
    for (int64_t s = 10; s < 200; ++s) {
      SVC_ASSERT_OK(log->Insert({Value::Int(s),
                                 Value::Int(rng.UniformInt(1, 5))}));
    }
  }
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db));

  // Random delta mix: inserts (some to brand-new videos), deletes, updates.
  DeltaSet deltas;
  SVC_ASSERT_OK_AND_ASSIGN(const Table* log, db.GetTable("Log"));
  std::set<int64_t> deleted;
  for (int i = 0; i < 60; ++i) {
    const int kind = static_cast<int>(rng.UniformInt(0, 2));
    if (kind == 0) {
      SVC_ASSERT_OK(deltas.AddInsert(
          db, "Log",
          {Value::Int(1000 + i), Value::Int(rng.UniformInt(1, 8))}));
    } else {
      const size_t victim =
          static_cast<size_t>(rng.UniformInt(0, log->NumRows() - 1));
      const Row& r = log->row(victim);
      if (!deleted.insert(r[0].AsInt()).second) continue;
      if (kind == 1) {
        SVC_ASSERT_OK(deltas.AddDelete(db, "Log", r));
      } else {
        SVC_ASSERT_OK(deltas.AddUpdate(
            db, "Log", r, {r[0], Value::Int(rng.UniformInt(1, 8))}));
      }
    }
  }
  SVC_ASSERT_OK(deltas.Register(&db));
  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                           BuildMaintenancePlan(view, deltas, db));
  ASSERT_EQ(static_cast<int>(plan.kind),
            static_cast<int>(MaintenanceKind::kChangeTable));
  SVC_ASSERT_OK(ApplyMaintenance(view, plan, &db));

  SVC_ASSERT_OK(deltas.ApplyToBase(&db));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* maintained, db.GetTable("vv"));
  Table maintained_copy = *maintained;
  SVC_ASSERT_OK(db.DropTable("vv"));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView fresh,
      MaterializedView::Create("vv", VisitViewDef(), &db));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* want, db.GetTable("vv"));
  ExpectTablesEquivalent(maintained_copy, *want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedMaintenanceTest,
                         ::testing::Range(1, 9));

TEST(StalenessTest, ClassifiesAllThreeErrorKinds) {
  Database db = MakeLogVideoDb();
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* stale_ptr, db.GetTable("vv"));
  Table stale = *stale_ptr;

  DeltaSet deltas;
  // video 2 count changes (incorrect), video 4 appears (missing), video 1
  // loses all visits (superfluous).
  SVC_EXPECT_OK(deltas.AddInsert(db, "Log", {Value::Int(700),
                                             Value::Int(2)}));
  SVC_EXPECT_OK(deltas.AddInsert(db, "Log", {Value::Int(701),
                                             Value::Int(4)}));
  SVC_EXPECT_OK(deltas.AddDelete(db, "Log", {Value::Int(0), Value::Int(1)}));
  SVC_EXPECT_OK(deltas.AddDelete(db, "Log", {Value::Int(1), Value::Int(1)}));
  SVC_EXPECT_OK(deltas.AddDelete(db, "Log", {Value::Int(2), Value::Int(1)}));
  SVC_EXPECT_OK(deltas.Register(&db));
  auto plan = BuildMaintenancePlan(view, deltas, db);
  ASSERT_TRUE(plan.ok());
  SVC_EXPECT_OK(ApplyMaintenance(view, *plan, &db));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* fresh, db.GetTable("vv"));

  SVC_ASSERT_OK_AND_ASSIGN(StalenessReport report,
                           ClassifyStaleness(stale, *fresh));
  EXPECT_EQ(report.incorrect, 1u);
  EXPECT_EQ(report.missing, 1u);
  EXPECT_EQ(report.superfluous, 1u);
  EXPECT_EQ(report.unchanged, 1u);  // video 3 untouched
}

}  // namespace
}  // namespace svc
