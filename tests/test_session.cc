#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "sql/planner.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

constexpr char kVisitViewSql[] =
    "CREATE MATERIALIZED VIEW visitView AS "
    "SELECT Log.videoId, COUNT(1) AS visitCount "
    "FROM Log, Video WHERE Log.videoId = Video.videoId "
    "GROUP BY Log.videoId";

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : session_(MakeLogVideoDb()) {}

  SqlResult Run(const std::string& sql) {
    auto r = session_.Execute(sql);
    if (!r.ok()) {
      ADD_FAILURE() << r.status().ToString() << "\nSQL: " << sql;
      return SqlResult();
    }
    return std::move(r).value();
  }

  Status Fail(const std::string& sql) {
    auto r = session_.Execute(sql);
    EXPECT_FALSE(r.ok()) << "expected failure for: " << sql;
    return r.ok() ? Status::OK() : r.status();
  }

  SqlSession session_;
};

// ---- Lifecycle -------------------------------------------------------------

TEST_F(SessionTest, FullLifecycle) {
  SqlResult created = Run(kVisitViewSql);
  EXPECT_NE(created.message.find("visitView"), std::string::npos);

  // Ingest deltas: the view goes stale but keeps its old contents.
  Run("INSERT INTO Log VALUES (100, 3), (101, 3), (102, 1)");
  EXPECT_TRUE(session_.engine().IsStale());
  SqlResult stale = Run("SELECT SUM(visitCount) AS s FROM visitView");
  EXPECT_EQ(stale.rows.row(0)[0].AsInt(), 10);

  // REFRESH commits; the view reflects the deltas exactly.
  Run("REFRESH VIEW visitView");
  EXPECT_FALSE(session_.engine().IsStale());
  SqlResult fresh = Run("SELECT SUM(visitCount) AS s FROM visitView");
  EXPECT_EQ(fresh.rows.row(0)[0].AsInt(), 13);
}

TEST_F(SessionTest, CreateTableInsertSelect) {
  Run("CREATE TABLE t (a INT, b DOUBLE, c STRING, PRIMARY KEY (a))");
  Run("INSERT INTO t VALUES (1, 2.5, 'x'), (2, 3, 'y')");  // 3 widens
  Run("REFRESH ALL");
  SqlResult r = Run("SELECT a, b, c FROM t WHERE b > 2.6");
  ASSERT_EQ(r.rows.NumRows(), 1u);
  EXPECT_EQ(r.rows.row(0)[0].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows.row(0)[1].AsDouble(), 3.0);
}

TEST_F(SessionTest, DeleteWhereQueuesCommittedRows) {
  Run(kVisitViewSql);
  SqlResult del = Run("DELETE FROM Log WHERE videoId = 3");
  EXPECT_NE(del.message.find("4 delete(s)"), std::string::npos);
  Run("REFRESH ALL");
  SqlResult r = Run("SELECT COUNT(1) AS c FROM Log");
  EXPECT_EQ(r.rows.row(0)[0].AsInt(), 6);
  // The aggregate view dropped the group.
  SqlResult v = Run("SELECT COUNT(1) AS c FROM visitView");
  EXPECT_EQ(v.rows.row(0)[0].AsInt(), 2);
}

TEST_F(SessionTest, ShowTablesAndViews) {
  Run(kVisitViewSql);
  SqlResult tables = Run("SHOW TABLES");
  EXPECT_EQ(tables.rows.NumRows(), 3u);  // Log, Video, visitView
  SqlResult views = Run("SHOW VIEWS");
  ASSERT_EQ(views.rows.NumRows(), 1u);
  EXPECT_EQ(views.rows.row(0)[0].AsString(), "visitView");
  EXPECT_EQ(views.rows.row(0)[2].AsString(), "aggregate");
  EXPECT_EQ(views.rows.row(0)[3].AsString(), "no");
  Run("INSERT INTO Log VALUES (100, 1)");
  SqlResult stale = Run("SHOW VIEWS");
  EXPECT_EQ(stale.rows.row(0)[3].AsString(), "yes");
}

// ---- SVC SELECT matches the direct engine API bit for bit ------------------

TEST_F(SessionTest, SvcSelectMatchesEngineQueryBitForBit) {
  Run(kVisitViewSql);
  Run("INSERT INTO Log VALUES (100, 3), (101, 3), (102, 2), (103, 1)");

  // Direct C++ path on an identically-prepared engine.
  SvcEngine direct(MakeLogVideoDb());
  SVC_ASSERT_OK_AND_ASSIGN(
      PlanPtr def,
      SqlToPlan("SELECT Log.videoId, COUNT(1) AS visitCount "
                "FROM Log, Video WHERE Log.videoId = Video.videoId "
                "GROUP BY Log.videoId",
                *direct.db()));
  SVC_ASSERT_OK(direct.CreateView("visitView", def));
  SVC_ASSERT_OK(direct.InsertRecord("Log", {Value::Int(100), Value::Int(3)}));
  SVC_ASSERT_OK(direct.InsertRecord("Log", {Value::Int(101), Value::Int(3)}));
  SVC_ASSERT_OK(direct.InsertRecord("Log", {Value::Int(102), Value::Int(2)}));
  SVC_ASSERT_OK(direct.InsertRecord("Log", {Value::Int(103), Value::Int(1)}));

  AggregateQuery q = AggregateQuery::Count(
      Expr::Gt(Expr::Col("visitCount"), Expr::LitInt(3)));
  SvcQueryOptions opts;
  opts.ratio = 0.5;
  opts.mode = EstimatorMode::kCorr;
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer expected,
                           direct.Query("visitView", q, opts));

  SqlResult got = Run(
      "SELECT COUNT(1) FROM visitView WHERE visitCount > 3 "
      "WITH SVC(ratio=0.5, mode=corr)");
  ASSERT_EQ(got.kind, SqlResultKind::kEstimate);
  ASSERT_EQ(got.rows.NumRows(), 1u);
  const Row& row = got.rows.row(0);
  EXPECT_EQ(row[0].AsDouble(), expected.estimate.value);
  ASSERT_TRUE(expected.estimate.has_ci);
  EXPECT_EQ(row[1].AsDouble(), expected.estimate.ci_low);
  EXPECT_EQ(row[2].AsDouble(), expected.estimate.ci_high);
  EXPECT_EQ(row[3].AsString(), "CORR");
  EXPECT_EQ(static_cast<size_t>(row[4].AsInt()),
            expected.estimate.sample_rows);

  // AQP mode too.
  opts.mode = EstimatorMode::kAqp;
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer aqp, direct.Query("visitView", q, opts));
  SqlResult got_aqp = Run(
      "SELECT COUNT(1) FROM visitView WHERE visitCount > 3 "
      "WITH SVC(ratio=0.5, mode=aqp)");
  EXPECT_EQ(got_aqp.rows.row(0)[0].AsDouble(), aqp.estimate.value);
  EXPECT_EQ(got_aqp.rows.row(0)[1].AsDouble(), aqp.estimate.ci_low);
  EXPECT_EQ(got_aqp.rows.row(0)[2].AsDouble(), aqp.estimate.ci_high);

  // Grouped variant matches QueryGrouped per group.
  AggregateQuery sum_q = AggregateQuery::Sum(Expr::Col("visitCount"));
  opts.mode = EstimatorMode::kCorr;
  SVC_ASSERT_OK_AND_ASSIGN(
      SvcGroupedAnswer grouped,
      direct.QueryGrouped("visitView", {"videoId"}, sum_q, opts));
  SqlResult got_grouped = Run(
      "SELECT videoId, SUM(visitCount) FROM visitView GROUP BY videoId "
      "WITH SVC(ratio=0.5, mode=corr)");
  ASSERT_EQ(got_grouped.rows.NumRows(), grouped.result.group_keys.size());
  for (size_t i = 0; i < got_grouped.rows.NumRows(); ++i) {
    const Row& gr = got_grouped.rows.row(i);
    const Estimate* e = grouped.result.Find(EncodeRowKey(gr, {0}));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(gr[1].AsDouble(), e->value);
  }
}

TEST_F(SessionTest, SvcAutoModePicksAnEstimator) {
  Run(kVisitViewSql);
  Run("INSERT INTO Log VALUES (100, 3)");
  SqlResult r = Run(
      "SELECT COUNT(1) FROM visitView WHERE visitCount > 3 "
      "WITH SVC(ratio=1.0, mode=auto)");
  EXPECT_TRUE(r.rows.row(0)[3].AsString() == "AQP" ||
              r.rows.row(0)[3].AsString() == "CORR");
}

TEST_F(SessionTest, SvcConfidenceOptionWidensInterval) {
  Run(kVisitViewSql);
  Run("INSERT INTO Log VALUES (100, 3), (101, 2), (102, 1), (103, 3)");
  SqlResult lo = Run(
      "SELECT SUM(visitCount) FROM visitView "
      "WITH SVC(ratio=0.5, mode=aqp, confidence=0.8)");
  SqlResult hi = Run(
      "SELECT SUM(visitCount) FROM visitView "
      "WITH SVC(ratio=0.5, mode=aqp, confidence=0.99)");
  const double lo_hw =
      lo.rows.row(0)[2].AsDouble() - lo.rows.row(0)[1].AsDouble();
  const double hi_hw =
      hi.rows.row(0)[2].AsDouble() - hi.rows.row(0)[1].AsDouble();
  EXPECT_LT(lo_hw, hi_hw);
}

// ---- Error paths (each asserts the actionable message text) ----------------

TEST_F(SessionTest, UnknownTableErrorsListKnownTables) {
  Status s = Fail("SELECT * FROM NoSuchTable");
  EXPECT_NE(s.message().find("no such table: NoSuchTable"),
            std::string::npos);
  EXPECT_NE(s.message().find("known tables:"), std::string::npos);
  EXPECT_NE(s.message().find("Log"), std::string::npos);

  Status ins = Fail("INSERT INTO Nope VALUES (1)");
  EXPECT_NE(ins.message().find("no such table: Nope"), std::string::npos);
}

TEST_F(SessionTest, RefreshUnknownViewListsKnownViews) {
  Status none = Fail("REFRESH VIEW ghost");
  EXPECT_NE(none.message().find("no such view: ghost"), std::string::npos);
  EXPECT_NE(none.message().find("no views have been created"),
            std::string::npos);

  Run(kVisitViewSql);
  Status some = Fail("REFRESH VIEW ghost");
  EXPECT_NE(some.message().find("known views: visitView"),
            std::string::npos);
}

TEST_F(SessionTest, MalformedSvcOptions) {
  Run(kVisitViewSql);
  Status unknown = Fail(
      "SELECT COUNT(1) FROM visitView WITH SVC(rate=0.5)");
  EXPECT_NE(unknown.message().find("unknown SVC option 'rate'"),
            std::string::npos);
  EXPECT_NE(unknown.message().find("ratio, mode, confidence"),
            std::string::npos);

  Status bad_mode = Fail(
      "SELECT COUNT(1) FROM visitView WITH SVC(mode=fast)");
  EXPECT_NE(bad_mode.message().find("mode must be aqp, corr, or auto"),
            std::string::npos);

  Status bad_ratio = Fail(
      "SELECT COUNT(1) FROM visitView WITH SVC(ratio=1.5)");
  EXPECT_NE(bad_ratio.message().find("ratio must be in (0, 1]"),
            std::string::npos);

  Status bad_conf = Fail(
      "SELECT COUNT(1) FROM visitView WITH SVC(confidence=1.0)");
  EXPECT_NE(bad_conf.message().find("confidence must be in (0, 1)"),
            std::string::npos);
}

TEST_F(SessionTest, NonAggregateSvcSelectRejected) {
  Run(kVisitViewSql);
  Status s = Fail("SELECT videoId FROM visitView WITH SVC(ratio=0.5)");
  EXPECT_NE(s.message().find("requires an aggregate select list"),
            std::string::npos);
  EXPECT_NE(s.message().find("drop WITH SVC"), std::string::npos);

  Status star = Fail("SELECT * FROM visitView WITH SVC(ratio=0.5)");
  EXPECT_NE(star.message().find("SELECT * cannot be combined with WITH SVC"),
            std::string::npos);
}

TEST_F(SessionTest, SvcOnBaseTableRejected) {
  Status s = Fail("SELECT COUNT(1) FROM Log WITH SVC(ratio=0.5)");
  EXPECT_NE(s.message().find("'Log' is a base table"), std::string::npos);
}

TEST_F(SessionTest, SvcOnJoinRejected) {
  Run(kVisitViewSql);
  Status s = Fail(
      "SELECT COUNT(1) FROM visitView v JOIN Video o ON v.videoId = "
      "o.videoId WITH SVC(ratio=0.5)");
  EXPECT_NE(s.message().find("exactly one materialized view"),
            std::string::npos);
}

TEST_F(SessionTest, CountDistinctNotSvcEstimable) {
  Run(kVisitViewSql);
  Status s = Fail(
      "SELECT COUNT(DISTINCT videoId) FROM visitView WITH SVC(ratio=0.5)");
  EXPECT_NE(s.message().find("count(DISTINCT ...)"), std::string::npos);
}

TEST_F(SessionTest, ExactAggregateErrorNamesAggregateAndQuery) {
  Run(kVisitViewSql);
  AggregateQuery q;
  q.func = AggFunc::kCountDistinct;
  q.attr = Expr::Col("videoId");
  auto r = session_.engine().QueryStale("visitView", q);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("count_distinct"), std::string::npos);
  EXPECT_NE(r.status().message().find("query: count_distinct(videoId)"),
            std::string::npos);
}

TEST_F(SessionTest, InsertArityAndTypeErrors) {
  Status arity = Fail("INSERT INTO Log VALUES (1, 2, 3)");
  EXPECT_NE(arity.message().find("expects 2 values (sessionId, videoId)"),
            std::string::npos);
  EXPECT_NE(arity.message().find("row 1 has 3"), std::string::npos);

  Status type = Fail("INSERT INTO Log VALUES (1, 'three')");
  EXPECT_NE(type.message().find("column 'videoId' expects int"),
            std::string::npos);
  EXPECT_NE(type.message().find("three"), std::string::npos);
  // Nothing was queued: the statement validates before ingesting.
  EXPECT_FALSE(session_.engine().IsStale());
}

TEST_F(SessionTest, RepeatedDeleteIsIdempotent) {
  Run(kVisitViewSql);
  // Two overlapping DELETEs before the REFRESH: the second must not queue
  // the same rows again (a double delete delta would double-count in the
  // change table and corrupt the aggregate view at REFRESH).
  SqlResult first = Run("DELETE FROM Log WHERE sessionId = 0");
  EXPECT_NE(first.message.find("queued 1 delete(s)"), std::string::npos);
  SqlResult second = Run("DELETE FROM Log WHERE videoId = 1");
  EXPECT_NE(second.message.find("queued 2 delete(s)"), std::string::npos);
  Run("REFRESH ALL");
  // Log had sessions {0,1,2} on video 1; all three deleted exactly once.
  SqlResult base = Run("SELECT COUNT(1) AS c FROM Log");
  EXPECT_EQ(base.rows.row(0)[0].AsInt(), 7);
  SqlResult view = Run(
      "SELECT SUM(visitCount) AS s FROM visitView");
  EXPECT_EQ(view.rows.row(0)[0].AsInt(), 7);
}

TEST_F(SessionTest, Int64MinLiteralRoundTrips) {
  Run("CREATE TABLE t (a INT, PRIMARY KEY (a))");
  Run("INSERT INTO t VALUES (-9223372036854775808), (9223372036854775807)");
  Run("REFRESH ALL");
  SqlResult r = Run("SELECT a FROM t WHERE a < 0");
  ASSERT_EQ(r.rows.NumRows(), 1u);
  EXPECT_EQ(r.rows.row(0)[0].AsInt(),
            std::numeric_limits<int64_t>::min());
}

TEST_F(SessionTest, OutOfRangeLiteralIsAnErrorNotACrash) {
  Status big_int = Fail(
      "INSERT INTO Log VALUES (99999999999999999999999, 1)");
  EXPECT_NE(big_int.message().find("integer literal out of range"),
            std::string::npos);
  const std::string huge(400, '9');
  Status big_double = Fail("INSERT INTO Log VALUES (1, " + huge + ".0)");
  EXPECT_NE(big_double.message().find("out of range"), std::string::npos);
  Status in_expr = Fail(
      "SELECT * FROM Log WHERE sessionId = 99999999999999999999999");
  EXPECT_NE(in_expr.message().find("out of range"), std::string::npos);
}

TEST_F(SessionTest, DuplicatePrimaryKeyInsertsRejectedUpFront) {
  // Against a committed row: queueing it would poison every later REFRESH.
  Status committed = Fail("INSERT INTO Log VALUES (0, 9)");
  EXPECT_NE(committed.message().find("duplicates the primary key"),
            std::string::npos);
  EXPECT_NE(committed.message().find("sessionId=0"), std::string::npos);
  EXPECT_FALSE(session_.engine().IsStale());

  // Within one statement: nothing from the batch may be queued.
  Status batch = Fail("INSERT INTO Log VALUES (100, 1), (100, 2)");
  EXPECT_NE(batch.message().find("this statement"), std::string::npos);
  EXPECT_FALSE(session_.engine().IsStale());

  // Against an already-pending insert.
  Run("INSERT INTO Log VALUES (100, 1)");
  Status pending = Fail("INSERT INTO Log VALUES (100, 2)");
  EXPECT_NE(pending.message().find("the pending deltas"), std::string::npos);

  // NULL primary keys never enter the queue.
  Status null_pk = Fail("INSERT INTO Log VALUES (NULL, 1)");
  EXPECT_NE(null_pk.message().find("NULL in primary-key column"),
            std::string::npos);

  // The update idiom stays legal: DELETE the committed row, re-INSERT it.
  Run("DELETE FROM Log WHERE sessionId = 0");
  Run("INSERT INTO Log VALUES (0, 2)");
  Run("REFRESH ALL");
  SqlResult r = Run("SELECT videoId FROM Log WHERE sessionId = 0");
  ASSERT_EQ(r.rows.NumRows(), 1u);
  EXPECT_EQ(r.rows.row(0)[0].AsInt(), 2);
}

TEST_F(SessionTest, InsertIntoViewRejected) {
  Run(kVisitViewSql);
  Status s = Fail("INSERT INTO visitView VALUES (9, 9)");
  EXPECT_NE(s.message().find("'visitView' is a materialized view"),
            std::string::npos);
}

TEST_F(SessionTest, CreateTableRequiresPrimaryKey) {
  Status s = Fail("CREATE TABLE t (a INT, b INT)");
  EXPECT_NE(s.message().find("PRIMARY KEY"), std::string::npos);
}

TEST_F(SessionTest, CreateDuplicateRejected) {
  Run(kVisitViewSql);
  Status dup_view = Fail(std::string(kVisitViewSql));
  EXPECT_NE(dup_view.message().find("view already exists"),
            std::string::npos);
  Status dup_table = Fail(
      "CREATE TABLE Log (sessionId INT, PRIMARY KEY (sessionId))");
  EXPECT_NE(dup_table.message().find("already exists"), std::string::npos);
}

TEST_F(SessionTest, SyntaxErrorsCarryContext) {
  Status stmt = Fail("FROBNICATE the database");
  EXPECT_NE(stmt.message().find("expected a statement"), std::string::npos);

  Status lit = Fail("INSERT INTO Log VALUES (1, SELECT)");
  EXPECT_NE(lit.message().find("expected a literal value"),
            std::string::npos);

  Status show = Fail("SHOW everything");
  EXPECT_NE(show.message().find("expected TABLES, VIEWS, STATS, or MAINTENANCE"),
            std::string::npos);
}

TEST_F(SessionTest, EscapedQuoteInStringLiteral) {
  Run("CREATE TABLE t (a INT, s STRING, PRIMARY KEY (a))");
  Run("INSERT INTO t VALUES (1, 'it''s'), (2, '''quoted''')");
  Run("REFRESH ALL");
  SqlResult r = Run("SELECT s FROM t WHERE s = 'it''s'");
  ASSERT_EQ(r.rows.NumRows(), 1u);
  EXPECT_EQ(r.rows.row(0)[0].AsString(), "it's");
  SqlResult q = Run("SELECT s FROM t WHERE a = 2");
  EXPECT_EQ(q.rows.row(0)[0].AsString(), "'quoted'");
}

TEST_F(SessionTest, FailedRefreshKeepsQueuedDeltas) {
  // Regression: a failed maintenance commit used to leave half-applied
  // state behind (view tables maintained, base commit aborted part-way).
  // MaintainAll is now transactional, so REFRESH either commits everything
  // or changes nothing — queued deltas are never dropped.
  Run(kVisitViewSql);
  Run("INSERT INTO Log VALUES (100, 3)");  // a valid queued delta
  // Poison the queue behind the session's validation: a second delta whose
  // primary key duplicates a committed row makes the base commit fail.
  SVC_ASSERT_OK(
      session_.engine().InsertRecord("Log", {Value::Int(0), Value::Int(2)}));
  const SqlResult before = Run("SELECT SUM(visitCount) AS s FROM visitView");

  Status st = Fail("REFRESH ALL");
  EXPECT_NE(st.ToString().find("duplicate primary key"), std::string::npos)
      << st.ToString();

  // Both queued deltas survive, the view is still stale with its old
  // contents, and the base table was not partially mutated.
  EXPECT_TRUE(session_.engine().IsStale());
  EXPECT_EQ(session_.engine().pending().TotalInserts(), 2u);
  const SqlResult after = Run("SELECT SUM(visitCount) AS s FROM visitView");
  EXPECT_EQ(after.rows.row(0)[0].AsInt(), before.rows.row(0)[0].AsInt());
  const SqlResult base = Run("SELECT COUNT(1) AS c FROM Log");
  EXPECT_EQ(base.rows.row(0)[0].AsInt(), 10);
}

TEST_F(SessionTest, SplitSqlScriptRespectsQuotesAndComments) {
  const std::vector<std::string> parts = SplitSqlScript(
      "-- header comment\n"
      "SELECT 1 FROM t; INSERT INTO s VALUES ('a;b');\n"
      "-- trailing comment only\n");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_NE(parts[0].find("SELECT 1 FROM t;"), std::string::npos);
  EXPECT_NE(parts[1].find("'a;b'"), std::string::npos);
}

}  // namespace
}  // namespace svc
