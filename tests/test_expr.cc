#include <gtest/gtest.h>

#include "relational/expr.h"
#include "tests/test_util.h"

namespace svc {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : schema_({{"t", "a", ValueType::kInt},
                 {"t", "b", ValueType::kDouble},
                 {"t", "s", ValueType::kString},
                 {"t", "n", ValueType::kInt}}) {}

  Value Eval(ExprPtr e, const Row& row) {
    EXPECT_TRUE(e->Bind(schema_).ok());
    return e->Eval(row);
  }

  Row row_{Value::Int(4), Value::Double(2.5), Value::String("hello"),
           Value::Null()};
  Schema schema_;
};

TEST_F(ExprTest, ColumnAndLiteral) {
  EXPECT_EQ(Eval(Expr::Col("a"), row_), Value::Int(4));
  EXPECT_EQ(Eval(Expr::Col("t.b"), row_), Value::Double(2.5));
  EXPECT_EQ(Eval(Expr::LitInt(7), row_), Value::Int(7));
  EXPECT_EQ(Eval(Expr::LitString("x"), row_), Value::String("x"));
}

TEST_F(ExprTest, UnknownColumnFailsBind) {
  ExprPtr e = Expr::Col("zzz");
  EXPECT_FALSE(e->Bind(schema_).ok());
}

TEST_F(ExprTest, IntArithmetic) {
  EXPECT_EQ(Eval(Expr::Add(Expr::Col("a"), Expr::LitInt(3)), row_),
            Value::Int(7));
  EXPECT_EQ(Eval(Expr::Sub(Expr::Col("a"), Expr::LitInt(10)), row_),
            Value::Int(-6));
  EXPECT_EQ(Eval(Expr::Mul(Expr::Col("a"), Expr::LitInt(5)), row_),
            Value::Int(20));
}

TEST_F(ExprTest, DivisionAlwaysDouble) {
  const Value v = Eval(Expr::Div(Expr::Col("a"), Expr::LitInt(8)), row_);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 0.5);
}

TEST_F(ExprTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval(Expr::Div(Expr::Col("a"), Expr::LitInt(0)), row_)
                  .is_null());
}

TEST_F(ExprTest, MixedArithmeticPromotesToDouble) {
  const Value v = Eval(Expr::Add(Expr::Col("a"), Expr::Col("b")), row_);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 6.5);
}

TEST_F(ExprTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Eval(Expr::Add(Expr::Col("n"), Expr::LitInt(1)), row_)
                  .is_null());
  EXPECT_TRUE(Eval(Expr::Mul(Expr::Col("n"), Expr::Col("a")), row_)
                  .is_null());
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_TRUE(Eval(Expr::Lt(Expr::Col("a"), Expr::LitInt(5)), row_).IsTrue());
  EXPECT_FALSE(Eval(Expr::Gt(Expr::Col("a"), Expr::LitInt(5)), row_)
                   .IsTrue());
  EXPECT_TRUE(Eval(Expr::Ge(Expr::Col("a"), Expr::LitInt(4)), row_).IsTrue());
  EXPECT_TRUE(Eval(Expr::Eq(Expr::Col("a"), Expr::LitDouble(4.0)), row_)
                  .IsTrue());
  EXPECT_TRUE(Eval(Expr::Ne(Expr::Col("s"), Expr::LitString("bye")), row_)
                  .IsTrue());
}

TEST_F(ExprTest, NullComparisonIsNull) {
  EXPECT_TRUE(Eval(Expr::Eq(Expr::Col("n"), Expr::LitInt(0)), row_)
                  .is_null());
  EXPECT_TRUE(Eval(Expr::Lt(Expr::Col("n"), Expr::LitInt(0)), row_)
                  .is_null());
}

TEST_F(ExprTest, ThreeValuedAnd) {
  auto t = Expr::Lit(Value::Bool(true));
  auto fa = Expr::Lit(Value::Bool(false));
  auto nu = Expr::Col("n");
  // false AND null = false; true AND null = null.
  EXPECT_FALSE(Eval(Expr::And(fa->Clone(), Expr::Eq(nu->Clone(),
                                                    Expr::LitInt(1))),
                    row_)
                   .is_null());
  EXPECT_TRUE(Eval(Expr::And(t->Clone(),
                             Expr::Eq(nu->Clone(), Expr::LitInt(1))),
                   row_)
                  .is_null());
}

TEST_F(ExprTest, ThreeValuedOr) {
  auto t = Expr::Lit(Value::Bool(true));
  auto fa = Expr::Lit(Value::Bool(false));
  auto null_cmp = Expr::Eq(Expr::Col("n"), Expr::LitInt(1));
  // true OR null = true; false OR null = null.
  EXPECT_TRUE(Eval(Expr::Or(t->Clone(), null_cmp->Clone()), row_).IsTrue());
  EXPECT_TRUE(Eval(Expr::Or(fa->Clone(), null_cmp->Clone()), row_).is_null());
}

TEST_F(ExprTest, NotAndIsNull) {
  EXPECT_FALSE(Eval(Expr::Not(Expr::Lit(Value::Bool(true))), row_).IsTrue());
  EXPECT_TRUE(
      Eval(Expr::Unary(UnaryOp::kIsNull, Expr::Col("n")), row_).IsTrue());
  EXPECT_TRUE(Eval(Expr::Unary(UnaryOp::kIsNotNull, Expr::Col("a")), row_)
                  .IsTrue());
  EXPECT_TRUE(Eval(Expr::Not(Expr::Col("n")), row_).is_null());
}

TEST_F(ExprTest, CoalesceAndIf) {
  EXPECT_EQ(Eval(Expr::CoalesceZero(Expr::Col("n")), row_), Value::Int(0));
  EXPECT_EQ(Eval(Expr::CoalesceZero(Expr::Col("a")), row_), Value::Int(4));
  EXPECT_EQ(Eval(Expr::Func("if", {Expr::Gt(Expr::Col("a"), Expr::LitInt(0)),
                                   Expr::LitString("pos"),
                                   Expr::LitString("neg")}),
                 row_),
            Value::String("pos"));
  // NULL condition takes the else branch.
  EXPECT_EQ(Eval(Expr::Func("if", {Expr::Col("n"), Expr::LitInt(1),
                                   Expr::LitInt(2)}),
                 row_),
            Value::Int(2));
}

TEST_F(ExprTest, StringFunctions) {
  EXPECT_EQ(Eval(Expr::Func("substr", {Expr::Col("s"), Expr::LitInt(2),
                                       Expr::LitInt(3)}),
                 row_),
            Value::String("ell"));
  EXPECT_EQ(Eval(Expr::Func("strlen", {Expr::Col("s")}), row_),
            Value::Int(5));
  EXPECT_EQ(Eval(Expr::Func("concat", {Expr::Col("s"), Expr::LitString("!"),
                                       Expr::Col("a")}),
                 row_),
            Value::String("hello!4"));
}

TEST_F(ExprTest, SubstrOutOfRange) {
  EXPECT_EQ(Eval(Expr::Func("substr", {Expr::Col("s"), Expr::LitInt(99),
                                       Expr::LitInt(3)}),
                 row_),
            Value::String(""));
}

TEST_F(ExprTest, MathFunctions) {
  EXPECT_EQ(Eval(Expr::Func("abs", {Expr::LitInt(-5)}), row_), Value::Int(5));
  EXPECT_EQ(Eval(Expr::Func("floor", {Expr::Col("b")}), row_), Value::Int(2));
  EXPECT_EQ(Eval(Expr::Func("ceil", {Expr::Col("b")}), row_), Value::Int(3));
  EXPECT_EQ(Eval(Expr::Func("round", {Expr::Col("b")}), row_), Value::Int(3));
  EXPECT_EQ(Eval(Expr::Func("least", {Expr::Col("a"), Expr::LitInt(2)}),
                 row_),
            Value::Int(2));
  EXPECT_EQ(Eval(Expr::Func("greatest", {Expr::Col("a"), Expr::LitInt(2)}),
                 row_),
            Value::Int(4));
}

TEST_F(ExprTest, UnknownFunctionFailsBind) {
  ExprPtr e = Expr::Func("frobnicate", {Expr::Col("a")});
  EXPECT_FALSE(e->Bind(schema_).ok());
}

TEST_F(ExprTest, WrongArityFailsBind) {
  ExprPtr e = Expr::Func("substr", {Expr::Col("s")});
  EXPECT_FALSE(e->Bind(schema_).ok());
}

TEST_F(ExprTest, CloneIsIndependent) {
  ExprPtr orig = Expr::Add(Expr::Col("a"), Expr::LitInt(1));
  ExprPtr copy = orig->Clone();
  SVC_ASSERT_OK(orig->Bind(schema_));
  // The clone is unbound; binding it against a different schema works.
  Schema other({{"", "a", ValueType::kInt}});
  SVC_ASSERT_OK(copy->Bind(other));
  EXPECT_EQ(copy->Eval({Value::Int(10)}), Value::Int(11));
  EXPECT_EQ(orig->Eval(row_), Value::Int(5));
}

TEST_F(ExprTest, CollectColumnRefs) {
  ExprPtr e = Expr::And(Expr::Gt(Expr::Col("a"), Expr::Col("t.b")),
                        Expr::Unary(UnaryOp::kIsNull, Expr::Col("n")));
  std::set<std::string> refs;
  e->CollectColumnRefs(&refs);
  EXPECT_EQ(refs, (std::set<std::string>{"a", "t.b", "n"}));
}

TEST_F(ExprTest, ToStringRoundTrips) {
  ExprPtr e = Expr::Add(Expr::Col("a"), Expr::LitInt(1));
  EXPECT_EQ(e->ToString(), "(a + 1)");
}

}  // namespace
}  // namespace svc
