// ShardedEngine (core/sharded_engine.h): derived placement (which
// relations a view's sampling key partitions, which stay replicated and
// pinned), clean NotSupported failures on conflicting placement demands,
// bit-identity of scatter-gather answers against an unsharded replica, and
// a concurrency stress where readers race a writer across published cuts —
// the sharded analog of test_concurrent_engine.cc, run under TSan by
// `scripts/check.sh --tsan`.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/sharded_engine.h"
#include "core/svc.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::EncodedRows;
using testing_util::MakeLogVideoDb;

constexpr char kVisitViewSql[] =
    "SELECT Log.videoId, COUNT(1) AS visitCount "
    "FROM Log, Video WHERE Log.videoId = Video.videoId "
    "GROUP BY Log.videoId";

/// A view whose sampling key (the derived pk, spanning both join sides
/// with non-join-key attributes) cannot push through the join: the view
/// falls back to replicated-class and pins both relations.
constexpr char kBlockedViewSql[] =
    "SELECT Log.sessionId, Video.ownerId, COUNT(1) AS c "
    "FROM Log, Video WHERE Log.videoId = Video.videoId "
    "GROUP BY Log.sessionId, Video.ownerId";

PlanPtr PlanOf(const ShardedEngine& eng, const std::string& sql) {
  return SqlToPlan(sql, eng.Snapshot()->shards[0]->engine.db()).value();
}

size_t ShardRows(const ShardedEngine& eng, size_t shard,
                 const std::string& table) {
  return (*eng.Snapshot()->shards[shard]->engine.db().GetTable(table))
      ->NumRows();
}

TEST(ShardedEngineTest, SamplingKeyReachableRelationsArePartitioned) {
  ShardedEngine eng(MakeLogVideoDb(), 4);
  SVC_ASSERT_OK(eng.CreateView("visitView", PlanOf(eng, kVisitViewSql)));
  ShardedSnapshotPtr snap = eng.Snapshot();
  // The sampling key (videoId) reaches both join inputs as a scan filter,
  // so both relations partition by it; no pins.
  EXPECT_TRUE(snap->meta->IsPartitionedRelation("Log"));
  EXPECT_TRUE(snap->meta->IsPartitionedRelation("Video"));
  EXPECT_TRUE(snap->meta->IsPartitionedView("visitView"));
  EXPECT_TRUE(snap->meta->replicated_pins.empty());
  // Partitioning is a partition: every row lives on exactly one shard.
  size_t log_rows = 0;
  size_t video_rows = 0;
  for (size_t s = 0; s < 4; ++s) {
    log_rows += ShardRows(eng, s, "Log");
    video_rows += ShardRows(eng, s, "Video");
  }
  EXPECT_EQ(log_rows, 10u);
  EXPECT_EQ(video_rows, 5u);
  // The gathered logical view matches an unsharded engine's view.
  SvcEngine replica(MakeLogVideoDb());
  SVC_ASSERT_OK(
      replica.CreateView("visitView", SqlToPlan(kVisitViewSql,
                                                *replica.db())
                                          .value()));
  SVC_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> gathered,
                           eng.GatherTable(*snap, "visitView"));
  EXPECT_EQ(EncodedRows(*gathered),
            EncodedRows(**replica.db()->GetTable("visitView")));
}

TEST(ShardedEngineTest, BlockedSamplingKeyFallsBackToReplicatedClass) {
  ShardedEngine eng(MakeLogVideoDb(), 3);
  SVC_ASSERT_OK(eng.CreateView("blockedView", PlanOf(eng, kBlockedViewSql)));
  ShardedSnapshotPtr snap = eng.Snapshot();
  EXPECT_FALSE(snap->meta->IsPartitionedView("blockedView"));
  EXPECT_FALSE(snap->meta->IsPartitionedRelation("Log"));
  auto pin = snap->meta->replicated_pins.find("Log");
  ASSERT_NE(pin, snap->meta->replicated_pins.end());
  EXPECT_EQ(pin->second.count("blockedView"), 1u);
  // Every shard holds the full relation and the identical full view.
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(ShardRows(eng, s, "Log"), 10u);
    EXPECT_EQ(EncodedRows(
                  **snap->shards[s]->engine.db().GetTable("blockedView")),
              EncodedRows(
                  **snap->shards[0]->engine.db().GetTable("blockedView")));
  }
  // Replicated-class answers equal an unsharded replica's, bit for bit.
  SvcEngine replica(MakeLogVideoDb());
  SVC_ASSERT_OK(replica.CreateView(
      "blockedView", SqlToPlan(kBlockedViewSql, *replica.db()).value()));
  const Row delta{Value::Int(100), Value::Int(3)};
  SVC_ASSERT_OK(eng.InsertRecord("Log", delta));
  SVC_ASSERT_OK(replica.InsertRecord("Log", delta));
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("c"));
  SvcQueryOptions opts;
  opts.ratio = 1.0;
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer got,
                           eng.Query(*eng.Snapshot(), "blockedView", q, opts));
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer want,
                           replica.Query("blockedView", q, opts));
  EXPECT_EQ(got.estimate.value, want.estimate.value);
  EXPECT_EQ(got.estimate.ci_low, want.estimate.ci_low);
  EXPECT_EQ(got.estimate.ci_high, want.estimate.ci_high);
  EXPECT_EQ(got.estimate.sample_rows, want.estimate.sample_rows);
}

TEST(ShardedEngineTest, ConflictingPlacementDemandsFailCleanly) {
  {
    // A replicated pin blocks a later partitioning demand.
    ShardedEngine eng(MakeLogVideoDb(), 2);
    SVC_ASSERT_OK(eng.CreateView("blockedView", PlanOf(eng, kBlockedViewSql)));
    const uint64_t version = eng.version();
    Status st = eng.CreateView("visitView", PlanOf(eng, kVisitViewSql));
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("replicated"), std::string::npos);
    EXPECT_NE(st.ToString().find("blockedView"), std::string::npos);
    EXPECT_EQ(eng.version(), version) << "failed DDL must publish nothing";
  }
  {
    // A partitioned relation blocks a later replicated demand...
    ShardedEngine eng(MakeLogVideoDb(), 2);
    SVC_ASSERT_OK(eng.CreateView("visitView", PlanOf(eng, kVisitViewSql)));
    Status st = eng.CreateView("blockedView", PlanOf(eng, kBlockedViewSql));
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("hash-partitioned"), std::string::npos);
    // ...and so does a view demanding a different partitioning key.
    Status st2 = eng.CreateView(
        "sessionView",
        PlanOf(eng, "SELECT sessionId, COUNT(1) AS c FROM Log "
                    "GROUP BY sessionId"));
    ASSERT_FALSE(st2.ok());
    EXPECT_NE(st2.ToString().find("different key"), std::string::npos);
    // The engine stays fully serviceable after the rejected DDL.
    SVC_ASSERT_OK_AND_ASSIGN(
        SvcAnswer ans,
        eng.Query(*eng.Snapshot(), "visitView",
                  AggregateQuery::Sum(Expr::Col("visitCount")), {}));
    EXPECT_GT(ans.estimate.sample_rows, 0u);
  }
  {
    // Two views demanding the same partitioning coexist.
    ShardedEngine eng(MakeLogVideoDb(), 2);
    SVC_ASSERT_OK(eng.CreateView("visitView", PlanOf(eng, kVisitViewSql)));
    SVC_ASSERT_OK(eng.CreateView(
        "videoView",
        PlanOf(eng, "SELECT videoId, COUNT(1) AS c FROM Log "
                    "GROUP BY videoId")));
    EXPECT_TRUE(eng.Snapshot()->meta->IsPartitionedView("videoView"));
  }
}

TEST(ShardedEngineTest, RefreshCommitsShardsIndependentlyAndCountsLogically) {
  ShardedEngine eng(MakeLogVideoDb(), 4);
  SVC_ASSERT_OK(eng.CreateView("visitView", PlanOf(eng, kVisitViewSql)));
  SvcEngine replica(MakeLogVideoDb());
  SVC_ASSERT_OK(replica.CreateView(
      "visitView", SqlToPlan(kVisitViewSql, *replica.db()).value()));
  // Route a batch touching several shards, plus a delete.
  std::vector<Row> batch;
  for (int64_t i = 0; i < 8; ++i) {
    batch.push_back({Value::Int(100 + i), Value::Int(1 + i % 4)});
  }
  SVC_ASSERT_OK(eng.InsertRows("Log", std::vector<Row>(batch)));
  for (const Row& r : batch) SVC_ASSERT_OK(replica.InsertRecord("Log", r));
  const Row doomed{Value::Int(0), Value::Int(1)};
  SVC_ASSERT_OK(eng.DeleteRows("Log", {doomed}));
  SVC_ASSERT_OK(replica.DeleteRecord("Log", doomed));

  ShardedSnapshotPtr stale = eng.Snapshot();
  size_t ins = 0;
  size_t del = 0;
  eng.PendingCounts(*stale, &ins, &del);
  EXPECT_EQ(ins, 8u);
  EXPECT_EQ(del, 1u);
  EXPECT_EQ(eng.PendingRowsFor(*stale, "Log"), 9u);

  size_t committed_ins = 0;
  size_t committed_del = 0;
  SVC_ASSERT_OK(eng.Refresh(&committed_ins, &committed_del));
  SVC_ASSERT_OK(replica.MaintainAll());
  EXPECT_EQ(committed_ins, 8u);
  EXPECT_EQ(committed_del, 1u);
  ShardedSnapshotPtr fresh = eng.Snapshot();
  eng.PendingCounts(*fresh, &ins, &del);
  EXPECT_EQ(ins + del, 0u);
  // The maintained logical view matches the unsharded replica's.
  SVC_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> gathered,
                           eng.GatherTable(*fresh, "visitView"));
  EXPECT_EQ(EncodedRows(*gathered),
            EncodedRows(**replica.db()->GetTable("visitView")));
  // A reader holding the pre-refresh cut still sees its pending deltas.
  EXPECT_EQ(eng.PendingRowsFor(*stale, "Log"), 9u);
}

// ---- Concurrency stress (the TSan target) ----------------------------------
//
// One writer session runs rounds of INSERT + REFRESH while reader sessions
// continuously issue SVC SELECTs over the same 4-shard engine. Every
// statement publishes one atomic cut, so each reader answer must be
// byte-identical to one of the answers a sequential replay produces at
// some published state — an answer matching no state is a torn cut.

constexpr int kShards = 4;
constexpr int kReaders = 4;
constexpr int kRounds = 8;
constexpr int kBatch = 25;
constexpr int64_t kInitialRows = 400;
constexpr int kStressGroups = 6;

constexpr char kStressQuery[] =
    "SELECT SUM(sv) AS x FROM V WHERE c > 2 "
    "WITH SVC(ratio=0.5, mode=corr)";

std::string InsertBatchSql(int round) {
  Rng rng(0x5eed0000u + static_cast<uint64_t>(round));
  std::string sql = "INSERT INTO F VALUES ";
  for (int i = 0; i < kBatch; ++i) {
    const int64_t id = kInitialRows + round * kBatch + i;
    if (i > 0) sql += ", ";
    sql += "(" + std::to_string(id) + ", " +
           std::to_string(rng.UniformInt(1, kStressGroups)) + ", " +
           std::to_string(rng.UniformInt(0, 1000)) + ")";
  }
  return sql;
}

/// Builds a session over a fresh 4-shard engine loaded with the stress
/// schema: F committed, V materialized over it.
std::unique_ptr<SqlSession> BuildStressSession(
    std::shared_ptr<ShardedEngine>* out_engine) {
  auto eng = std::make_shared<ShardedEngine>(Database(), kShards);
  auto session = std::make_unique<SqlSession>(EngineHandle::Sharded(eng));
  EXPECT_TRUE(
      session->Execute("CREATE TABLE F (id INT, g INT, v INT, "
                       "PRIMARY KEY (id));")
          .ok());
  Rng rng(11);
  std::string load = "INSERT INTO F VALUES ";
  for (int64_t id = 0; id < kInitialRows; ++id) {
    if (id > 0) load += ", ";
    load += "(" + std::to_string(id) + ", " +
            std::to_string(rng.UniformInt(1, kStressGroups)) + ", " +
            std::to_string(rng.UniformInt(0, 1000)) + ")";
  }
  EXPECT_TRUE(session->Execute(load).ok());
  EXPECT_TRUE(session->Execute("REFRESH ALL;").ok());
  EXPECT_TRUE(session
                  ->Execute("CREATE MATERIALIZED VIEW V AS "
                            "SELECT g, COUNT(1) AS c, SUM(v) AS sv "
                            "FROM F GROUP BY g;")
                  .ok());
  if (out_engine != nullptr) *out_engine = eng;
  return session;
}

std::string AnswerBytes(const SqlResult& r) {
  std::string out;
  for (size_t i = 0; i < r.rows.NumRows(); ++i) {
    for (const Value& v : r.rows.row(i)) out += v.ToString() + "|";
  }
  return out;
}

TEST(ShardedEngineTest, ConcurrentReadersOnlyObservePublishedCuts) {
  // Sequential replay: the set of legal answers, one per published state.
  std::set<std::string> legal;
  {
    auto replay = BuildStressSession(nullptr);
    SVC_ASSERT_OK_AND_ASSIGN(SqlResult r0, replay->Execute(kStressQuery));
    legal.insert(AnswerBytes(r0));
    for (int round = 0; round < kRounds; ++round) {
      SVC_ASSERT_OK(replay->Execute(InsertBatchSql(round)).status());
      SVC_ASSERT_OK_AND_ASSIGN(SqlResult ri, replay->Execute(kStressQuery));
      legal.insert(AnswerBytes(ri));
      SVC_ASSERT_OK(replay->Execute("REFRESH ALL;").status());
      SVC_ASSERT_OK_AND_ASSIGN(SqlResult rr, replay->Execute(kStressQuery));
      legal.insert(AnswerBytes(rr));
    }
  }

  std::shared_ptr<ShardedEngine> eng;
  auto writer = BuildStressSession(&eng);
  std::vector<std::thread> readers;
  std::vector<int> reader_failures(kReaders, 0);
  std::vector<int> reader_queries(kReaders, 0);
  std::atomic<bool> done{false};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      SqlSession session(EngineHandle::Sharded(eng));
      // One guaranteed query after the writer finishes (the writer may
      // outpace a slow-starting reader), plus as many as fit during the
      // race window itself.
      bool final_pass = false;
      while (!final_pass) {
        final_pass = done.load(std::memory_order_acquire);
        auto got = session.Execute(kStressQuery);
        if (!got.ok()) {
          ++reader_failures[r];
          continue;
        }
        ++reader_queries[r];
        if (legal.count(AnswerBytes(*got)) == 0) ++reader_failures[r];
      }
    });
  }
  for (int round = 0; round < kRounds; ++round) {
    SVC_ASSERT_OK(writer->Execute(InsertBatchSql(round)).status());
    SVC_ASSERT_OK(writer->Execute("REFRESH ALL;").status());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(reader_failures[r], 0) << "reader " << r << " saw an answer "
                                     << "matching no published state";
    EXPECT_GT(reader_queries[r], 0) << "reader " << r << " never ran";
  }
}

TEST(ShardedEngineTest, ConcurrentWritersSerializeValidationAndCommit) {
  // Two sessions insert disjoint id ranges concurrently: the
  // validate-then-commit critical section (WithStatementLock) must make
  // every batch land exactly once, with no key check racing a commit.
  std::shared_ptr<ShardedEngine> eng;
  auto setup = BuildStressSession(&eng);
  constexpr int kWriterRounds = 12;
  constexpr int kPerRound = 10;
  auto write = [&](int64_t base) {
    SqlSession session(EngineHandle::Sharded(eng));
    for (int round = 0; round < kWriterRounds; ++round) {
      std::string sql = "INSERT INTO F VALUES ";
      for (int i = 0; i < kPerRound; ++i) {
        const int64_t id = base + round * kPerRound + i;
        if (i > 0) sql += ", ";
        sql += "(" + std::to_string(id) + ", 1, 5)";
      }
      auto r = session.Execute(sql);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (round % 4 == 3) {
        auto ref = session.Execute("REFRESH ALL;");
        EXPECT_TRUE(ref.ok()) << ref.status().ToString();
      }
    }
  };
  std::thread a(write, int64_t{10000});
  std::thread b(write, int64_t{20000});
  a.join();
  b.join();
  SVC_ASSERT_OK(setup->Execute("REFRESH ALL;").status());
  // Every row landed exactly once (PK uniqueness would reject a double
  // commit; a lost batch would shrink the count).
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult all, setup->Execute("SELECT id FROM F;"));
  EXPECT_EQ(all.rows.NumRows(),
            static_cast<size_t>(kInitialRows + 2 * kWriterRounds * kPerRound));
}

}  // namespace
}  // namespace svc
