#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "shell/shell.h"
#include "tests/test_util.h"

namespace svc {
namespace {

constexpr char kSetupSql[] =
    "CREATE TABLE t (a INT, b DOUBLE, PRIMARY KEY (a));"
    "INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5);"
    "REFRESH ALL;";

TEST(ShellTest, RunScriptPrintsTablesAndMessages) {
  SqlSession session;
  std::ostringstream out;
  Shell shell(&session, &out);
  SVC_ASSERT_OK(shell.RunScript(std::string(kSetupSql) +
                                "SELECT a, b FROM t WHERE a > 1;"));
  const std::string text = out.str();
  EXPECT_NE(text.find("created table t"), std::string::npos);
  EXPECT_NE(text.find("REFRESH commits them"), std::string::npos);
  EXPECT_NE(text.find("a  b"), std::string::npos);   // header
  EXPECT_NE(text.find("3.5"), std::string::npos);    // cell
  EXPECT_NE(text.find("-- 2 row(s)"), std::string::npos);
  EXPECT_EQ(shell.statements_run(), 4u);
}

TEST(ShellTest, EchoModePrefixesStatements) {
  SqlSession session;
  std::ostringstream out;
  ShellOptions opts;
  opts.echo = true;
  Shell shell(&session, &out, opts);
  SVC_ASSERT_OK(shell.RunScript(
      "CREATE TABLE t (a INT, PRIMARY KEY (a));"));
  EXPECT_NE(out.str().find("svc> CREATE TABLE t"), std::string::npos);
}

TEST(ShellTest, StopsOnErrorByDefault) {
  SqlSession session;
  std::ostringstream out;
  Shell shell(&session, &out);
  const Status s = shell.RunScript(
      "SELECT * FROM missing; CREATE TABLE t (a INT, PRIMARY KEY (a));");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(shell.statements_run(), 1u);  // second statement never ran
  EXPECT_NE(out.str().find("error: UnknownRelation"), std::string::npos);
}

TEST(ShellTest, KeepGoingRunsPastErrors) {
  SqlSession session;
  std::ostringstream out;
  ShellOptions opts;
  opts.keep_going = true;
  Shell shell(&session, &out, opts);
  const Status s = shell.RunScript(
      "SELECT * FROM missing; CREATE TABLE t (a INT, PRIMARY KEY (a));");
  EXPECT_FALSE(s.ok());  // the error is still reported...
  EXPECT_EQ(shell.statements_run(), 2u);  // ...but execution continued
  EXPECT_NE(out.str().find("created table t"), std::string::npos);
}

TEST(ShellTest, InteractiveStatementsSpanLines) {
  SqlSession session;
  std::ostringstream out;
  Shell shell(&session, &out);
  std::istringstream in(
      "CREATE TABLE t (a INT,\n"
      "PRIMARY KEY (a));\n"
      "INSERT INTO t VALUES (7); REFRESH ALL;\n"
      "SELECT a FROM t\n");  // final ';' omitted: EOF submits
  SVC_ASSERT_OK(shell.RunInteractive(in, out, /*show_prompt=*/false));
  const std::string text = out.str();
  EXPECT_NE(text.find("created table t"), std::string::npos);
  EXPECT_NE(text.find("-- 1 row(s)"), std::string::npos);
  EXPECT_EQ(shell.statements_run(), 4u);
}

TEST(ShellTest, InteractiveSemicolonInCommentDoesNotSubmit) {
  SqlSession session;
  std::ostringstream out;
  Shell shell(&session, &out);
  std::istringstream in(
      "CREATE TABLE t (a INT, PRIMARY KEY (a));\n"
      "SELECT COUNT(1) AS n -- count rows;\n"
      "FROM t;\n");
  // The ';' inside the comment must not end the statement: the SELECT
  // spans both lines and succeeds.
  SVC_ASSERT_OK(shell.RunInteractive(in, out, /*show_prompt=*/false));
  EXPECT_NE(out.str().find("-- 1 row(s)"), std::string::npos);
  EXPECT_EQ(shell.statements_run(), 2u);
}

TEST(ShellTest, InteractiveSurvivesStatementErrorsButReportsThem) {
  SqlSession session;
  std::ostringstream out;
  Shell shell(&session, &out);
  std::istringstream in(
      "SELECT * FROM missing;\n"
      "CREATE TABLE t (a INT, PRIMARY KEY (a));\n");
  // The loop continues past the error, but the error still becomes the
  // return value so piped scripts exit non-zero like --file does.
  EXPECT_FALSE(shell.RunInteractive(in, out, /*show_prompt=*/false).ok());
  EXPECT_NE(out.str().find("error: UnknownRelation"), std::string::npos);
  EXPECT_NE(out.str().find("created table t"), std::string::npos);
}

// The documented example script must run clean through the shell library
// (the svc_shell binary-level golden diff is a separate ctest +
// the CI docs job).
TEST(ShellTest, QuickstartScriptRunsClean) {
  std::ifstream in(std::string(SVC_REPO_DIR) + "/examples/quickstart.sql");
  ASSERT_TRUE(in.is_open()) << "examples/quickstart.sql not found";
  std::ostringstream script;
  script << in.rdbuf();

  SqlSession session;
  std::ostringstream out;
  Shell shell(&session, &out);
  SVC_ASSERT_OK(shell.RunScript(script.str()));
  // The script's SVC estimate answers carry confidence intervals.
  EXPECT_NE(out.str().find("95% CI"), std::string::npos);
  EXPECT_FALSE(session.engine().IsStale());  // it ends with a REFRESH
}

}  // namespace
}  // namespace svc
