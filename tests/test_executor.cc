#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "relational/executor.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::EncodedRows;
using testing_util::MakeLogVideoDb;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : db_(MakeLogVideoDb()) {}

  Table Run(const PlanPtr& plan) {
    auto r = ExecutePlan(*plan, db_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Database db_;
};

TEST_F(ExecutorTest, ScanAppliesAlias) {
  Table t = Run(PlanNode::Scan("Log", "l"));
  EXPECT_EQ(t.NumRows(), 10u);
  EXPECT_EQ(t.schema().column(0).qualifier, "l");
  EXPECT_TRUE(t.schema().Contains("l.videoId"));
}

TEST_F(ExecutorTest, ScanMissingTableFails) {
  auto r = ExecutePlan(*PlanNode::Scan("NoSuch"), db_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnknownRelation);
}

TEST_F(ExecutorTest, SelectFilters) {
  Table t = Run(PlanNode::Select(
      PlanNode::Scan("Log"),
      Expr::Eq(Expr::Col("videoId"), Expr::LitInt(3))));
  EXPECT_EQ(t.NumRows(), 4u);
}

TEST_F(ExecutorTest, SelectNullPredicateExcludesRow) {
  Table t = Run(PlanNode::Select(
      PlanNode::Scan("Video"),
      Expr::Gt(Expr::Div(Expr::Col("duration"),
                         Expr::Sub(Expr::Col("videoId"), Expr::Col("videoId"))),
               Expr::LitInt(0))));
  EXPECT_EQ(t.NumRows(), 0u);  // division by zero -> NULL -> not TRUE
}

TEST_F(ExecutorTest, ProjectComputesExpressions) {
  Table t = Run(PlanNode::Project(
      PlanNode::Scan("Video"),
      {{"videoId", Expr::Col("videoId"), ""},
       {"double_dur", Expr::Mul(Expr::Col("duration"), Expr::LitInt(2)), ""}}));
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.schema().NumColumns(), 2u);
  EXPECT_DOUBLE_EQ(t.row(0)[1].ToDouble(), t.row(0)[0].AsInt() * 1.0);
}

TEST_F(ExecutorTest, InnerJoinMatchesForeignKey) {
  Table t = Run(PlanNode::Join(PlanNode::Scan("Log", "l"),
                               PlanNode::Scan("Video", "v"), JoinType::kInner,
                               {{"l.videoId", "v.videoId"}}, nullptr, true));
  EXPECT_EQ(t.NumRows(), 10u);  // every log row matches exactly one video
  EXPECT_EQ(t.schema().NumColumns(), 5u);
}

TEST_F(ExecutorTest, InnerJoinDropsUnmatched) {
  // Only videos 1..3 are visited; inner join from Video drops 4 and 5.
  Table t = Run(PlanNode::Join(PlanNode::Scan("Video", "v"),
                               PlanNode::Scan("Log", "l"), JoinType::kInner,
                               {{"v.videoId", "l.videoId"}}));
  std::set<int64_t> vids;
  SVC_ASSERT_OK_AND_ASSIGN(size_t vid_idx, t.schema().Resolve("v.videoId"));
  for (const auto& r : t.rows()) vids.insert(r[vid_idx].AsInt());
  EXPECT_EQ(vids, (std::set<int64_t>{1, 2, 3}));
}

TEST_F(ExecutorTest, LeftJoinPadsWithNulls) {
  Table t = Run(PlanNode::Join(PlanNode::Scan("Video", "v"),
                               PlanNode::Scan("Log", "l"), JoinType::kLeft,
                               {{"v.videoId", "l.videoId"}}));
  EXPECT_EQ(t.NumRows(), 12u);  // 10 matches + videos 4, 5 null-padded
  size_t padded = 0;
  SVC_ASSERT_OK_AND_ASSIGN(size_t sid, t.schema().Resolve("l.sessionId"));
  for (const auto& r : t.rows()) {
    if (r[sid].is_null()) ++padded;
  }
  EXPECT_EQ(padded, 2u);
}

TEST_F(ExecutorTest, FullOuterJoinKeepsBothSides) {
  // Restrict logs to video 1, then full-join with all videos.
  PlanPtr logs1 = PlanNode::Select(
      PlanNode::Scan("Log", "l"),
      Expr::Eq(Expr::Col("videoId"), Expr::LitInt(1)));
  Table t = Run(PlanNode::Join(std::move(logs1), PlanNode::Scan("Video", "v"),
                               JoinType::kFull, {{"l.videoId", "v.videoId"}}));
  // 3 sessions match video 1; videos 2..5 appear null-padded on the left.
  EXPECT_EQ(t.NumRows(), 7u);
}

TEST_F(ExecutorTest, RightJoinMirrorsLeft) {
  Table t = Run(PlanNode::Join(PlanNode::Scan("Log", "l"),
                               PlanNode::Scan("Video", "v"), JoinType::kRight,
                               {{"l.videoId", "v.videoId"}}));
  EXPECT_EQ(t.NumRows(), 12u);
}

TEST_F(ExecutorTest, JoinResidualPredicate) {
  Table t = Run(PlanNode::Join(
      PlanNode::Scan("Log", "l"), PlanNode::Scan("Video", "v"),
      JoinType::kInner, {{"l.videoId", "v.videoId"}},
      Expr::Gt(Expr::Col("v.duration"), Expr::LitDouble(0.9))));
  // Videos with duration > 0.9: ids 2..5 -> only visits to 2 and 3 remain.
  EXPECT_EQ(t.NumRows(), 7u);
}

TEST_F(ExecutorTest, NullJoinKeysNeverMatch) {
  Table withnull(Schema({{"", "k", ValueType::kInt}}));
  withnull.AppendUnchecked({Value::Null()});
  withnull.AppendUnchecked({Value::Int(1)});
  db_.PutTable("N", std::move(withnull));
  Table t = Run(PlanNode::Join(PlanNode::Scan("N", "a"),
                               PlanNode::Scan("N", "b"), JoinType::kInner,
                               {{"a.k", "b.k"}}));
  EXPECT_EQ(t.NumRows(), 1u);  // only 1=1; NULL does not match NULL
}

TEST_F(ExecutorTest, GroupByCount) {
  Table t = Run(PlanNode::Aggregate(
      PlanNode::Scan("Log"), {"videoId"},
      {{AggFunc::kCountStar, nullptr, "visitCount"}}));
  EXPECT_EQ(t.NumRows(), 3u);
  SVC_ASSERT_OK_AND_ASSIGN(size_t c, t.schema().Resolve("visitCount"));
  SVC_ASSERT_OK_AND_ASSIGN(size_t v, t.schema().Resolve("videoId"));
  for (const auto& r : t.rows()) {
    if (r[v].AsInt() == 1) {
      EXPECT_EQ(r[c].AsInt(), 3);
    }
    if (r[v].AsInt() == 2) {
      EXPECT_EQ(r[c].AsInt(), 3);
    }
    if (r[v].AsInt() == 3) {
      EXPECT_EQ(r[c].AsInt(), 4);
    }
  }
}

TEST_F(ExecutorTest, AggregateFunctions) {
  Table t = Run(PlanNode::Aggregate(
      PlanNode::Scan("Video"), {},
      {{AggFunc::kSum, Expr::Col("duration"), "s"},
       {AggFunc::kAvg, Expr::Col("duration"), "a"},
       {AggFunc::kMin, Expr::Col("duration"), "lo"},
       {AggFunc::kMax, Expr::Col("duration"), "hi"},
       {AggFunc::kCount, Expr::Col("duration"), "c"},
       {AggFunc::kMedian, Expr::Col("duration"), "med"},
       {AggFunc::kCountDistinct, Expr::Col("ownerId"), "owners"}}));
  ASSERT_EQ(t.NumRows(), 1u);
  const Row& r = t.row(0);
  EXPECT_DOUBLE_EQ(r[0].ToDouble(), 7.5);   // 0.5+1+1.5+2+2.5
  EXPECT_DOUBLE_EQ(r[1].AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(r[2].ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(r[3].ToDouble(), 2.5);
  EXPECT_EQ(r[4].AsInt(), 5);
  EXPECT_DOUBLE_EQ(r[5].AsDouble(), 1.5);
  EXPECT_EQ(r[6].AsInt(), 3);
}

TEST_F(ExecutorTest, MedianEvenCount) {
  Table nums(Schema({{"", "x", ValueType::kInt}}));
  for (int64_t v : {4, 1, 3, 2}) nums.AppendUnchecked({Value::Int(v)});
  db_.PutTable("Nums", std::move(nums));
  Table t = Run(PlanNode::Aggregate(PlanNode::Scan("Nums"), {},
                                    {{AggFunc::kMedian, Expr::Col("x"),
                                      "m"}}));
  EXPECT_DOUBLE_EQ(t.row(0)[0].AsDouble(), 2.5);
}

TEST_F(ExecutorTest, AggregateIgnoresNulls) {
  Table nums(Schema({{"", "x", ValueType::kInt}}));
  nums.AppendUnchecked({Value::Int(10)});
  nums.AppendUnchecked({Value::Null()});
  db_.PutTable("Nums", std::move(nums));
  Table t = Run(PlanNode::Aggregate(
      PlanNode::Scan("Nums"), {},
      {{AggFunc::kSum, Expr::Col("x"), "s"},
       {AggFunc::kCount, Expr::Col("x"), "c"},
       {AggFunc::kCountStar, nullptr, "n"},
       {AggFunc::kAvg, Expr::Col("x"), "a"}}));
  const Row& r = t.row(0);
  EXPECT_EQ(r[0].AsInt(), 10);
  EXPECT_EQ(r[1].AsInt(), 1);
  EXPECT_EQ(r[2].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r[3].AsDouble(), 10.0);
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  Table empty(Schema({{"", "x", ValueType::kInt}}));
  db_.PutTable("E", std::move(empty));
  Table t = Run(PlanNode::Aggregate(
      PlanNode::Scan("E"), {},
      {{AggFunc::kSum, Expr::Col("x"), "s"},
       {AggFunc::kCountStar, nullptr, "c"}}));
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_TRUE(t.row(0)[0].is_null());
  EXPECT_EQ(t.row(0)[1].AsInt(), 0);
}

TEST_F(ExecutorTest, GroupedAggregateOnEmptyInputYieldsNoRows) {
  Table empty(Schema({{"", "g", ValueType::kInt}, {"", "x", ValueType::kInt}}));
  db_.PutTable("E", std::move(empty));
  Table t = Run(PlanNode::Aggregate(PlanNode::Scan("E"), {"g"},
                                    {{AggFunc::kSum, Expr::Col("x"), "s"}}));
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(ExecutorTest, UnionDeduplicates) {
  PlanPtr ids = PlanNode::Project(PlanNode::Scan("Log"),
                                  {{"id", Expr::Col("videoId"), ""}});
  Table t = Run(PlanNode::Union(ids->Clone(), ids));
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(ExecutorTest, IntersectAndDifference) {
  PlanPtr log_ids = PlanNode::Project(PlanNode::Scan("Log"),
                                      {{"id", Expr::Col("videoId"), ""}});
  PlanPtr video_ids = PlanNode::Project(PlanNode::Scan("Video"),
                                        {{"id", Expr::Col("videoId"), ""}});
  Table inter = Run(PlanNode::Intersect(video_ids->Clone(), log_ids->Clone()));
  EXPECT_EQ(inter.NumRows(), 3u);  // {1,2,3}
  Table diff = Run(PlanNode::Difference(video_ids, log_ids));
  EXPECT_EQ(diff.NumRows(), 2u);  // {4,5}
}

TEST_F(ExecutorTest, SetOpArityMismatchFails) {
  auto r = ExecutePlan(
      *PlanNode::Union(PlanNode::Scan("Log"), PlanNode::Scan("Video")), db_);
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, HashFilterIsDeterministicSubset) {
  PlanPtr plan = PlanNode::HashFilter(PlanNode::Scan("Log"), {"sessionId"},
                                      0.5, HashFamily::kFnv1a);
  Table a = Run(plan->Clone());
  Table b = Run(plan);
  EXPECT_EQ(EncodedRows(a), EncodedRows(b));
  EXPECT_LT(a.NumRows(), 10u);
  // Subset of the base table.
  Table full = Run(PlanNode::Scan("Log"));
  auto full_rows = EncodedRows(full);
  for (const auto& row : EncodedRows(a)) {
    EXPECT_TRUE(std::binary_search(full_rows.begin(), full_rows.end(), row));
  }
}

TEST_F(ExecutorTest, HashFilterRatioOneKeepsAll) {
  Table t = Run(PlanNode::HashFilter(PlanNode::Scan("Log"), {"sessionId"},
                                     1.0, HashFamily::kSha1));
  EXPECT_EQ(t.NumRows(), 10u);
}

// The fused γ(⋈) path must be indistinguishable from materializing the
// join first. An always-true Select between the aggregate and the join
// blocks fusion while leaving schema and rows identical.
TEST_F(ExecutorTest, FusedJoinAggregateMatchesMaterialized) {
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}});

  const std::vector<AggItem> agg_template = {
      {AggFunc::kCountStar, nullptr, "n"},
      {AggFunc::kSum, Expr::Col("v.duration"), "s"},
      {AggFunc::kAvg, Expr::Col("v.duration"), "a"},
      {AggFunc::kMin, Expr::Col("l.sessionId"), "lo"},
      {AggFunc::kMax, Expr::Col("l.sessionId"), "hi"},
      {AggFunc::kMedian, Expr::Col("v.duration"), "med"},
      {AggFunc::kCountDistinct, Expr::Col("v.ownerId"), "owners"},
      // A non-column input forces the fused path's scratch-row fallback.
      {AggFunc::kSum, Expr::Mul(Expr::Col("v.duration"), Expr::LitInt(2)),
       "s2"}};
  auto aggs = [&] {
    std::vector<AggItem> out;
    for (const auto& a : agg_template) {
      out.push_back({a.func, a.input ? a.input->Clone() : nullptr, a.alias});
    }
    return out;
  };

  Table fused = Run(PlanNode::Aggregate(join->Clone(), {"l.videoId"}, aggs()));
  Table unfused = Run(PlanNode::Aggregate(
      PlanNode::Select(join->Clone(), Expr::LitInt(1)), {"l.videoId"},
      aggs()));
  EXPECT_EQ(EncodedRows(fused), EncodedRows(unfused));
}

TEST_F(ExecutorTest, FusedJoinAggregateAppliesResidual) {
  PlanPtr join = PlanNode::Join(
      PlanNode::Scan("Log", "l"), PlanNode::Scan("Video", "v"),
      JoinType::kInner, {{"l.videoId", "v.videoId"}},
      Expr::Gt(Expr::Col("v.duration"), Expr::LitDouble(0.9)));
  Table t = Run(PlanNode::Aggregate(std::move(join), {},
                                    {{AggFunc::kCountStar, nullptr, "n"}}));
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0].AsInt(), 7);  // same as JoinResidualPredicate
}

TEST_F(ExecutorTest, FusedGlobalAggregateOverEmptyJoinYieldsOneRow) {
  Table empty(Schema({{"", "k", ValueType::kInt}}));
  db_.PutTable("E", std::move(empty));
  Table t = Run(PlanNode::Aggregate(
      PlanNode::Join(PlanNode::Scan("E", "a"), PlanNode::Scan("Log", "l"),
                     JoinType::kInner, {{"a.k", "l.videoId"}}),
      {}, {{AggFunc::kCountStar, nullptr, "n"},
           {AggFunc::kSum, Expr::Col("l.sessionId"), "s"}}));
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0].AsInt(), 0);
  EXPECT_TRUE(t.row(0)[1].is_null());
}

TEST_F(ExecutorTest, AggregateOverOuterJoinStaysUnfused) {
  // Outer joins fall back to materialize-then-aggregate; NULL-padded left
  // rows must reach the aggregate.
  Table t = Run(PlanNode::Aggregate(
      PlanNode::Join(PlanNode::Scan("Video", "v"), PlanNode::Scan("Log", "l"),
                     JoinType::kLeft, {{"v.videoId", "l.videoId"}}),
      {}, {{AggFunc::kCountStar, nullptr, "n"},
           {AggFunc::kCount, Expr::Col("l.sessionId"), "matched"}}));
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0].AsInt(), 12);  // 10 matches + 2 padded
  EXPECT_EQ(t.row(0)[1].AsInt(), 10);
}

TEST_F(ExecutorTest, ComposedPipeline) {
  // visitCount view from the paper: join + group-by count.
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}}, nullptr, true);
  PlanPtr agg = PlanNode::Aggregate(
      std::move(join), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "visitCount"},
       {AggFunc::kMax, Expr::Col("v.duration"), "duration"}});
  Table t = Run(PlanNode::Select(
      std::move(agg), Expr::Gt(Expr::Col("visitCount"), Expr::LitInt(3))));
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0].AsInt(), 3);  // video 3 has 4 visits
}

}  // namespace
}  // namespace svc
