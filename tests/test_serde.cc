// Exact-binary serde (storage/serde.h): values round-trip with their exact
// type tag and IEEE bit pattern (NaN payloads, -0.0, non-representable
// decimals), tables with schema + primary key, plans/exprs structurally,
// and truncated or tampered buffers fail with a Status instead of UB.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "sql/planner.h"
#include "storage/serde.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

TEST(SerdeTest, PrimitivesRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xab);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefULL);
  PutI64(&buf, -42);
  PutF64(&buf, 0.1);
  PutStr(&buf, "hello");
  ByteReader r(buf);
  EXPECT_EQ(r.U8().value(), 0xab);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64().value(), -42);
  EXPECT_EQ(BitsOf(r.F64().value()), BitsOf(0.1));
  EXPECT_EQ(r.Str().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReaderFailsGracefullyOnTruncation) {
  std::string buf;
  PutU64(&buf, 7);
  // Every proper prefix must yield a clean error from some getter, never a
  // read past the end.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader r(std::string_view(buf).substr(0, cut));
    auto got = r.U64();
    ASSERT_FALSE(got.ok()) << "cut=" << cut;
    EXPECT_NE(got.status().ToString().find("truncated"), std::string::npos);
  }
  // A length-prefixed string whose payload is cut short also fails.
  std::string s;
  PutStr(&s, "abcdef");
  ByteReader r(std::string_view(s).substr(0, s.size() - 2));
  EXPECT_FALSE(r.Str().ok());
}

TEST(SerdeTest, ValueRoundTripIsBitExact) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const Value values[] = {
      Value::Null(),         Value::Int(-5),
      Value::Int(3),         Value::Double(0.1),
      Value::Double(-0.0),   Value::Double(kNan),
      Value::Double(3.0),  // integral double must NOT collapse to Int(3)
      Value::String(""),     Value::String("a\0b"),
  };
  for (const Value& v : values) {
    std::string buf;
    EncodeValue(v, &buf);
    ByteReader r(buf);
    Value got = DecodeValue(&r).value();
    ASSERT_EQ(got.type(), v.type()) << v.ToString();
    if (v.type() == ValueType::kDouble) {
      EXPECT_EQ(BitsOf(got.AsDouble()), BitsOf(v.AsDouble())) << v.ToString();
    } else if (v.type() == ValueType::kInt) {
      EXPECT_EQ(got.AsInt(), v.AsInt());
    } else if (v.type() == ValueType::kString) {
      EXPECT_EQ(got.AsString(), v.AsString());
    }
    EXPECT_TRUE(r.AtEnd());
  }
  // The exactness this codec exists for: Value::EncodeTo collapses
  // Double(3.0) and Int(3) into one canonical form; this codec must not.
  std::string d3, i3;
  EncodeValue(Value::Double(3.0), &d3);
  EncodeValue(Value::Int(3), &i3);
  EXPECT_NE(d3, i3);
}

TEST(SerdeTest, BadValueTagFailsDecode) {
  std::string buf;
  PutU8(&buf, 0x7f);
  ByteReader r(buf);
  EXPECT_FALSE(DecodeValue(&r).ok());
}

TEST(SerdeTest, TableRoundTripPreservesSchemaKeyAndRows) {
  Database db = MakeLogVideoDb();
  const Table& video = **db.GetTable("Video");
  std::string buf;
  EncodeTable(video, &buf);
  ByteReader r(buf);
  Table got = DecodeTable(&r).value();
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(got.NumRows(), video.NumRows());
  ASSERT_TRUE(got.HasPrimaryKey());
  EXPECT_EQ(got.pk_indices(), video.pk_indices());
  ASSERT_EQ(got.schema().NumColumns(), video.schema().NumColumns());
  for (size_t c = 0; c < video.schema().NumColumns(); ++c) {
    EXPECT_EQ(got.schema().column(c).name, video.schema().column(c).name);
    EXPECT_EQ(got.schema().column(c).type, video.schema().column(c).type);
  }
  for (size_t i = 0; i < video.NumRows(); ++i) {
    for (size_t c = 0; c < video.schema().NumColumns(); ++c) {
      EXPECT_TRUE(got.row(i)[c] == video.row(i)[c]);
    }
  }
}

TEST(SerdeTest, TableDecodeRejectsDuplicateKeys) {
  Table t(Schema({{"", "k", ValueType::kInt}}));
  ASSERT_TRUE(t.SetPrimaryKey({"k"}).ok());
  t.AppendUnchecked({Value::Int(1)});
  t.AppendUnchecked({Value::Int(1)});  // bypasses the index on purpose
  std::string buf;
  EncodeTable(t, &buf);
  ByteReader r(buf);
  EXPECT_FALSE(DecodeTable(&r).ok());
}

TEST(SerdeTest, ExprRoundTripViaToString) {
  const char* exprs[] = {
      "a + b * 2",
      "NOT (x > 1 AND y <= 0.5) OR name = 'joe'",
      "abs(duration - 1.5)",
      "videoId IS NULL",
  };
  for (const char* s : exprs) {
    ExprPtr e = ParseScalarExpr(s).value();
    std::string buf;
    EncodeExpr(*e, &buf);
    ByteReader r(buf);
    ExprPtr got = DecodeExpr(&r).value();
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(got->ToString(), e->ToString()) << s;
  }
}

TEST(SerdeTest, PlanRoundTripViaToString) {
  Database db = MakeLogVideoDb();
  const char* queries[] = {
      "SELECT videoId FROM Video WHERE duration > 1.0",
      "SELECT Log.videoId, COUNT(1) AS visitCount FROM Log, Video "
      "WHERE Log.videoId = Video.videoId GROUP BY Log.videoId",
      "SELECT sessionId FROM Log UNION SELECT videoId FROM Video",
  };
  for (const char* q : queries) {
    PlanPtr plan = SqlToPlan(q, db).value();
    std::string buf;
    ASSERT_TRUE(EncodePlan(*plan, &buf).ok()) << q;
    ByteReader r(buf);
    PlanPtr got = DecodePlan(&r).value();
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(got->ToString(), plan->ToString()) << q;
  }
}

TEST(SerdeTest, DeltaSetRoundTripPreservesQueueOrder) {
  Database db = MakeLogVideoDb();
  DeltaSet deltas;
  ASSERT_TRUE(
      deltas.AddInsert(db, "Log", {Value::Int(100), Value::Int(4)}).ok());
  ASSERT_TRUE(
      deltas.AddInsert(db, "Log", {Value::Int(101), Value::Int(1)}).ok());
  ASSERT_TRUE(
      deltas.AddDelete(db, "Log", {Value::Int(0), Value::Int(1)}).ok());
  std::string buf;
  EncodeDeltaSet(deltas, &buf);
  ByteReader r(buf);
  DeltaSet got = DecodeDeltaSet(&r, db).value();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(got.InsertRows("Log"), 2u);
  EXPECT_EQ(got.DeleteRows("Log"), 1u);
  // The mutation counter survives the round trip verbatim (not rebuilt
  // from the re-added rows, which would coincidentally also land on 3
  // here — so bump it past the row count first).
  deltas.RetainRows("Log", [](const Row&) { return true; });
  EXPECT_GT(deltas.version(), 3u);
  buf.clear();
  EncodeDeltaSet(deltas, &buf);
  ByteReader r2(buf);
  EXPECT_EQ(DecodeDeltaSet(&r2, db).value().version(), deltas.version());
  std::vector<int64_t> order;
  got.ForEachInsert("Log", [&](const Row& row) {
    order.push_back(row[0].AsInt());
  });
  EXPECT_EQ(order, (std::vector<int64_t>{100, 101}));
}

TEST(SerdeTest, Crc32MatchesKnownVector) {
  // The standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

}  // namespace
}  // namespace svc
