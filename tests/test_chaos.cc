// Chaos tests: the deterministic network fault injector, end-to-end request
// deadlines, idempotent client retry, and graceful degradation.
//
// The heart is a differential harness: for every network fault site and
// every fault position, a retrying client must finish the workload with a
// transcript *bit-identical* to the fault-free run (and to an in-process
// replica) — lost responses are replayed from the server's idempotency
// journal, never re-executed, so no write lands twice and no read answers
// differently. A fork-based test covers the hardest window: the server
// crashing after a write's WAL append but before its response, with the
// client converging against the restarted server.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "core/shared_engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "sql/session.h"
#include "storage/durable_engine.h"
#include "storage/fault.h"
#include "storage/serde.h"
#include "tests/test_util.h"

namespace svc {
namespace {

/// Disarms both injectors on scope exit so one test's arming can never leak
/// into the next.
struct InjectorGuard {
  InjectorGuard() {
    FaultInjector::Net().Disarm();
    FaultInjector::Global().Disarm();
  }
  ~InjectorGuard() {
    FaultInjector::Net().Disarm();
    FaultInjector::Global().Disarm();
  }
};

/// The quickstart-shaped workload the differential runs end to end: DDL,
/// loads, a materialized view, staleness, SVC estimates in both modes, a
/// refresh, an exact read-back, and SHOW STATS (in-memory stats are fully
/// deterministic because a replayed retry never re-executes).
const std::vector<std::string>& Workload() {
  static const std::vector<std::string>* kStmts = new std::vector<std::string>{
      "CREATE TABLE Video (videoId INT, ownerId INT, duration DOUBLE, "
      "PRIMARY KEY (videoId));",
      "INSERT INTO Video VALUES (1, 101, 1.5), (2, 102, 0.8), (3, 100, 2.5), "
      "(4, 101, 1.1);",
      "CREATE TABLE Log (sessionId INT, videoId INT, "
      "PRIMARY KEY (sessionId));",
      "INSERT INTO Log VALUES (0, 1), (1, 1), (2, 2), (3, 3), (4, 3), (5, 1), "
      "(6, 2), (7, 3), (8, 1), (9, 2);",
      "REFRESH ALL;",
      "CREATE MATERIALIZED VIEW visitView AS SELECT Log.videoId, COUNT(1) AS "
      "visitCount FROM Log, Video WHERE Log.videoId = Video.videoId GROUP BY "
      "Log.videoId;",
      "INSERT INTO Log VALUES (100, 2), (101, 2), (102, 3), (103, 1), "
      "(104, 4), (105, 4);",
      "SELECT COUNT(1) FROM visitView WHERE visitCount > 2 WITH "
      "SVC(ratio=0.5, mode=corr);",
      "SELECT SUM(visitCount) FROM visitView WITH SVC(ratio=0.5, mode=aqp);",
      "REFRESH VIEW visitView;",
      "SELECT videoId, visitCount FROM visitView WHERE visitCount > 2;",
      "SHOW STATS;",
  };
  return *kStmts;
}

/// Flattens a SqlResult to a comparison key covering every field a client
/// can observe: kind, message, estimator mode, degraded flag, and all rows
/// (order-insensitively, via the bit-exact row-key codec).
std::string Render(const SqlResult& r) {
  std::string out = std::to_string(static_cast<int>(r.kind)) + "|" +
                    r.message + "|" +
                    std::to_string(static_cast<int>(r.mode_used)) + "|" +
                    (r.degraded ? "D" : "-");
  for (const std::string& key : testing_util::EncodedRows(r.rows)) {
    out += "|" + key;
  }
  return out;
}

std::unique_ptr<SvcServer> StartServer(ServerOptions opts = {}) {
  auto server = std::make_unique<SvcServer>(
      std::move(opts), std::make_shared<SharedEngine>(Database()));
  EXPECT_TRUE(server->Start().ok());
  return server;
}

ClientOptions RetryingClientOptions(uint16_t port) {
  ClientOptions opts;
  opts.port = port;
  opts.max_retries = 8;
  opts.recv_timeout_ms = 250;  // conn.stall costs one timeout, not a hang
  opts.backoff_initial_ms = 5;
  opts.backoff_max_ms = 20;
  return opts;
}

/// Runs the workload over the wire against a fresh in-memory server with a
/// retrying client, with `site` (nullptr = fault-free) armed to fire on its
/// `nth` hit. Returns the rendered transcript; surfaces server counters and
/// client retry counts through the out-params.
std::vector<std::string> RunWorkloadOverWire(bool prepared, const char* site,
                                             uint64_t nth, ServerStats* stats,
                                             uint64_t* retries) {
  std::vector<std::string> transcript;
  FaultInjector::Net().Disarm();
  auto server = StartServer();
  auto client = SvcClient::Connect(RetryingClientOptions(server->port()));
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  if (!client.ok()) return transcript;
  if (site != nullptr) FaultInjector::Net().Arm(site, nth);
  for (const std::string& sql : Workload()) {
    Result<SqlResult> r = Status::Internal("unset");
    if (!prepared) {
      r = (*client)->Execute(sql);
    } else {
      auto stmt = (*client)->Prepare(sql);
      if (!stmt.ok()) {
        r = stmt.status();
      } else {
        r = (*client)->ExecutePrepared(*stmt, {});
      }
    }
    if (r.ok()) {
      transcript.push_back(Render(*r));
    } else {
      transcript.push_back("ERR|" + r.status().ToString());
    }
  }
  FaultInjector::Net().Disarm();
  *stats = server->stats();
  *retries = (*client)->retries();
  return transcript;
}

// For every fault site, at several response positions (a DDL ack, a write
// ack, an estimate, the final SHOW STATS), in both text and prepared mode:
// the retrying client's transcript must be bit-identical to the fault-free
// run and to an in-process shared-engine replica. SHOW STATS inside the
// workload doubles as the no-duplicate-writes check — a re-executed insert
// or refresh would shift pending_rows / delta_version.
TEST(ChaosNetFaultTest, DifferentialAcrossSitesAndPositions) {
  InjectorGuard guard;

  std::vector<std::string> replica;
  {
    SqlSession local(
        EngineHandle::Shared(std::make_shared<SharedEngine>(Database())));
    for (const std::string& sql : Workload()) {
      auto r = local.Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      replica.push_back(Render(*r));
    }
  }

  // Response numbering: the injector is armed after the Hello handshake,
  // so statement k's response is hit k in text mode (prepared mode
  // interleaves Prepare responses, landing the same nth on different —
  // equally interesting — frames).
  const char* kSites[] = {"conn.stall", "conn.drop_response",
                          "conn.close_mid_frame", "send.short_write"};
  const uint64_t kPositions[] = {1, 7, 9, 12};

  for (bool prepared : {false, true}) {
    ServerStats base_stats;
    uint64_t base_retries = 0;
    const std::vector<std::string> baseline =
        RunWorkloadOverWire(prepared, nullptr, 0, &base_stats, &base_retries);
    ASSERT_EQ(baseline.size(), Workload().size());
    EXPECT_EQ(base_retries, 0u);
    // The wire adds nothing and loses nothing: remote == local, bit for bit.
    EXPECT_EQ(baseline, replica) << "prepared=" << prepared;

    for (const char* site : kSites) {
      for (uint64_t nth : kPositions) {
        ServerStats stats;
        uint64_t retried = 0;
        const std::vector<std::string> faulted =
            RunWorkloadOverWire(prepared, site, nth, &stats, &retried);
        const std::string label = std::string(site) + ":" +
                                  std::to_string(nth) +
                                  (prepared ? " (prepared)" : " (text)");
        EXPECT_EQ(faulted, baseline) << label;
        EXPECT_EQ(stats.net_faults_injected, 1u) << label;
        EXPECT_GE(retried, 1u) << label;
        if (!prepared) {
          // Text mode: every response past Hello carries an idempotency
          // token, so the lost response is always answered from the
          // journal — exactly once, never re-executed.
          EXPECT_EQ(stats.idem_replays, 1u) << label;
        }
      }
    }
  }
}

// ---- Raw wire helper -------------------------------------------------------

/// A minimal raw protocol speaker for tests that need pipelined frames or a
/// downgraded Hello — SvcClient is strictly request/response and always
/// offers the latest protocol version.
class RawWire {
 public:
  explicit RawWire(uint16_t port) { Init(port); }
  ~RawWire() {
    if (fd_ >= 0) close(fd_);
  }

  void SendBytes(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  void SendFrame(FrameTag tag, uint32_t request_id, const std::string& body) {
    Frame frame;
    frame.tag = tag;
    frame.request_id = request_id;
    frame.body = body;
    std::string wire;
    EncodeFrame(frame, &wire);
    SendBytes(wire);
  }

  void ReadFrame(Frame* out) {
    char buf[65536];
    while (true) {
      auto decoded = TryDecodeFrame(&inbuf_, kDefaultMaxFrameBytes);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      if (decoded->has_value()) {
        *out = std::move(**decoded);
        return;
      }
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "server closed the connection mid-frame";
      inbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  /// Hello handshake offering `max_version`; returns the negotiated one.
  uint32_t Hello(uint32_t max_version) {
    HelloRequest req;
    req.max_version = max_version;
    req.client_name = "raw-chaos";
    std::string body;
    EncodeHelloRequest(req, &body);
    SendFrame(FrameTag::kHello, 1, body);
    Frame reply;
    ReadFrame(&reply);
    EXPECT_EQ(reply.tag, FrameTag::kHelloOk);
    auto hello = DecodeHelloReply(reply.body);
    EXPECT_TRUE(hello.ok());
    return hello.ok() ? hello->version : 0;
  }

 private:
  void Init(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }

  int fd_ = -1;
  std::string inbuf_;
};

std::string QueryBody(const std::string& sql) {
  std::string body;
  PutStr(&body, sql);
  return body;
}

// ---- v1 interop ------------------------------------------------------------

// A v1 client against a v2 server: the handshake negotiates down to 1, bare
// Query bodies (no trailing RequestMeta) execute, and the kEstimate body's
// v1 prefix [message, mode, table] is self-contained — the v2 degraded flag
// rides a single trailing byte a v1 decoder never reads.
TEST(ChaosInteropTest, V1ClientAgainstV2Server) {
  InjectorGuard guard;
  auto server = StartServer();
  RawWire raw(server->port());
  ASSERT_EQ(raw.Hello(1), 1u);

  const std::vector<std::string> setup = {
      Workload()[0], Workload()[1], Workload()[2], Workload()[3],
      Workload()[4], Workload()[5], Workload()[6],
  };
  uint32_t id = 10;
  for (const std::string& sql : setup) {
    raw.SendFrame(FrameTag::kQuery, ++id, QueryBody(sql));
    Frame reply;
    raw.ReadFrame(&reply);
    ASSERT_NE(reply.tag, FrameTag::kError)
        << sql << ": " << DecodeErrorBody(reply.body).ToString();
  }

  raw.SendFrame(FrameTag::kQuery, ++id, QueryBody(Workload()[7]));
  Frame est;
  raw.ReadFrame(&est);
  ASSERT_EQ(est.tag, FrameTag::kEstimate);
  // The full (v2) decode sees a non-degraded answer...
  auto decoded = DecodeSqlResultBody(est.tag, est.body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->degraded);
  // ...and the flag is exactly the final byte, after the whole v1 payload.
  ASSERT_FALSE(est.body.empty());
  EXPECT_EQ(est.body.back(), '\0');
}

// ---- Graceful degradation --------------------------------------------------

std::vector<std::string> DegradeSetup() {
  // SVC samples *view groups*, so a visible CI-width difference between
  // sampling ratios needs many groups: 100 videos, each its own group, with
  // uneven visit counts and a delta touching most of them.
  std::vector<std::string> setup = {
      "CREATE TABLE Video (videoId INT, ownerId INT, PRIMARY KEY (videoId));",
      "CREATE TABLE Log (sessionId INT, videoId INT, "
      "PRIMARY KEY (sessionId));",
  };
  std::string videos = "INSERT INTO Video VALUES ";
  for (int v = 1; v <= 100; ++v) {
    videos += (v > 1 ? ", (" : "(") + std::to_string(v) + ", " +
              std::to_string(100 + v % 7) + ")";
  }
  setup.push_back(videos + ";");
  std::string base = "INSERT INTO Log VALUES ";
  for (int i = 0; i < 200; ++i) {
    base += (i ? ", (" : "(") + std::to_string(i) + ", " +
            std::to_string(1 + i % 100) + ")";
  }
  setup.push_back(base + ";");
  setup.push_back("REFRESH ALL;");
  setup.push_back(
      "CREATE MATERIALIZED VIEW visitView AS SELECT Log.videoId, COUNT(1) AS "
      "visitCount FROM Log, Video WHERE Log.videoId = Video.videoId GROUP BY "
      "Log.videoId;");
  std::string delta = "INSERT INTO Log VALUES ";
  for (int i = 0; i < 150; ++i) {
    delta += (i ? ", (" : "(") + std::to_string(1000 + i) + ", " +
             std::to_string(1 + (i * 13) % 100) + ")";
  }
  setup.push_back(delta + ";");
  return setup;
}

Result<size_t> CiColumn(const SqlResult& r, const std::string& name) {
  return r.rows.schema().Resolve(name);
}

double CiWidth(const SqlResult& r) {
  auto lo = CiColumn(r, "ci_low");
  auto hi = CiColumn(r, "ci_high");
  EXPECT_TRUE(lo.ok() && hi.ok());
  EXPECT_EQ(r.rows.NumRows(), 1u);
  if (!lo.ok() || !hi.ok() || r.rows.NumRows() != 1) return 0.0;
  const Row& row = r.rows.rows()[0];
  return row[*hi].AsDouble() - row[*lo].AsDouble();
}

// A pipelined burst against `--degrade --max-inflight 1
// --degrade-max-inflight 4`: the first query is admitted normally; while it
// executes, the next three are admitted *degraded* — a WITH SVC query runs
// at the reduced ratio and is flagged, anything else is shed with
// kOverloaded (degraded mode must never answer in the wrong mode) — and
// past the hard cap everything is shed. Admission order on one connection
// is deterministic: frames are decoded in arrival order while exec.delay
// pins the first query in its in-flight slot.
TEST(ChaosDegradeTest, BurstDegradesSvcQueriesAndShedsTheRest) {
  InjectorGuard guard;
  ServerOptions sopts;
  sopts.degrade = true;
  sopts.max_inflight = 1;
  sopts.degrade_max_inflight = 4;
  sopts.degrade_ratio_scale = 0.5;
  auto server = StartServer(std::move(sopts));

  {
    ClientOptions copts;
    copts.port = server->port();
    auto setup = SvcClient::Connect(copts);
    ASSERT_TRUE(setup.ok());
    for (const std::string& sql : DegradeSetup()) {
      auto r = (*setup)->Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    }
  }

  RawWire raw(server->port());
  ASSERT_EQ(raw.Hello(kProtocolVersionMax), kProtocolVersionMax);

  const std::string est =
      "SELECT SUM(visitCount) FROM visitView WITH SVC(ratio=0.5, mode=corr);";
  const std::string insert = "INSERT INTO Log VALUES (900, 1);";
  FaultInjector::Net().Arm("exec.delay", 1);  // pins q1 for 50 ms

  std::string burst;
  auto add = [&](uint32_t id, const std::string& sql) {
    Frame f;
    f.tag = FrameTag::kQuery;
    f.request_id = id;
    f.body = QueryBody(sql);
    EncodeFrame(f, &burst);
  };
  add(11, est);     // admitted normally (in-flight 0)
  add(12, est);     // degraded (in-flight 1 >= max_inflight)
  add(13, insert);  // degraded admission, then shed: not a WITH SVC query
  add(14, est);     // degraded (in-flight 3 < hard cap)
  add(15, est);     // shed: hard cap reached
  add(16, est);     // shed
  raw.SendBytes(burst);

  std::map<uint32_t, Frame> replies;
  for (int i = 0; i < 6; ++i) {
    Frame f;
    ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&f));
    replies[f.request_id] = std::move(f);
  }
  ASSERT_EQ(replies.size(), 6u);

  ASSERT_EQ(replies[11].tag, FrameTag::kEstimate);
  auto q1 = DecodeSqlResultBody(FrameTag::kEstimate, replies[11].body);
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(q1->degraded);

  for (uint32_t id : {12u, 14u}) {
    ASSERT_EQ(replies[id].tag, FrameTag::kEstimate) << "id " << id;
    auto q = DecodeSqlResultBody(FrameTag::kEstimate, replies[id].body);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(q->degraded) << "id " << id;
    // Degraded means the same estimator at a reduced ratio: never a wrong
    // answer, just a wider confidence interval.
    EXPECT_GT(CiWidth(*q), CiWidth(*q1)) << "id " << id;
  }

  ASSERT_EQ(replies[13].tag, FrameTag::kError);
  const Status shed = DecodeErrorBody(replies[13].body);
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_NE(shed.ToString().find("shedding"), std::string::npos);
  EXPECT_TRUE(IsRetryableStatus(shed.code()));

  for (uint32_t id : {15u, 16u}) {
    ASSERT_EQ(replies[id].tag, FrameTag::kError) << "id " << id;
    EXPECT_EQ(DecodeErrorBody(replies[id].body).code(),
              StatusCode::kOverloaded);
  }

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.degraded_admissions, 3u);
  EXPECT_EQ(stats.overload_rejections, 2u);
}

// The session-level contract behind the wire flag: a degraded execution
// scales the requested sampling ratio down, marks the result, and pays for
// the saved work with a wider CI — it never changes the answer's mode.
TEST(ChaosDegradeTest, DegradedSessionWidensConfidenceInterval) {
  SqlSession session(EngineHandle::Private());
  for (const std::string& sql : DegradeSetup()) {
    auto r = session.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  const std::string est =
      "SELECT SUM(visitCount) FROM visitView WITH SVC(ratio=0.5, mode=corr);";
  auto normal = session.Execute(est);
  ASSERT_TRUE(normal.ok());
  ASSERT_EQ(normal->kind, SqlResultKind::kEstimate);
  EXPECT_FALSE(normal->degraded);

  session.set_degrade_ratio_scale(0.5);
  auto degraded = session.Execute(est);
  session.set_degrade_ratio_scale(1.0);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->mode_used, normal->mode_used);
  EXPECT_GT(CiWidth(*degraded), CiWidth(*normal));
}

// ---- Deadlines -------------------------------------------------------------

// A deadline smaller than the (injected) execution stall fails with
// kDeadlineExceeded — a terminal, non-retryable code — and the same
// statement finishes fine once the stall is gone.
TEST(ChaosDeadlineTest, DeadlineExpiresDuringInjectedStall) {
  InjectorGuard guard;
  auto server = StartServer();
  {
    ClientOptions copts;
    copts.port = server->port();
    auto setup = SvcClient::Connect(copts);
    ASSERT_TRUE(setup.ok());
    SVC_ASSERT_OK(
        (*setup)->Execute("CREATE TABLE t (k INT, PRIMARY KEY (k));").status());
  }

  ClientOptions copts;
  copts.port = server->port();
  copts.deadline_ms = 30;
  auto client = SvcClient::Connect(copts);
  ASSERT_TRUE(client.ok());

  FaultInjector::Net().Arm("exec.delay", 1);  // 50 ms > the 30 ms budget
  auto late = (*client)->Execute("SELECT k FROM t;");
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(late.status().ToString().find("deadline"), std::string::npos);
  EXPECT_FALSE(IsRetryableStatus(late.status().code()));
  FaultInjector::Net().Disarm();

  SVC_ASSERT_OK((*client)->Execute("SELECT k FROM t;").status());
  EXPECT_EQ(server->stats().deadline_exceeded, 1u);
}

// The cooperative half of cancellation: a session with an already-expired
// token refuses the statement before any mutation, and works again once
// the token is cleared.
TEST(ChaosDeadlineTest, ExpiredCancelTokenFailsBeforeMutation) {
  SqlSession session(EngineHandle::Private());
  SVC_ASSERT_OK(
      session.Execute("CREATE TABLE t (k INT, PRIMARY KEY (k));").status());
  SVC_ASSERT_OK(session.Execute("INSERT INTO t VALUES (1);").status());
  SVC_ASSERT_OK(session.Execute("REFRESH ALL;").status());

  CancelToken token = CancelToken::After(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(token.Expired());
  session.set_cancel_token(&token);
  auto blocked = session.Execute("INSERT INTO t VALUES (2);");
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kDeadlineExceeded);
  session.set_cancel_token(nullptr);

  // Nothing landed while cancelled; the retried statement applies cleanly.
  SVC_ASSERT_OK(session.Execute("INSERT INTO t VALUES (2);").status());
  SVC_ASSERT_OK(session.Execute("REFRESH ALL;").status());
  auto rows = session.Execute("SELECT k FROM t;");
  SVC_ASSERT_OK(rows.status());
  EXPECT_EQ(rows->rows.NumRows(), 2u);
}

// ---- Exactly-once retry, durable -------------------------------------------

// The classic lost-ack: a durable server commits an INSERT (WAL appended)
// but its response is dropped on the wire. The retrying client re-sends the
// same (token, seq); the journal answers with the recorded frame and the
// write lands exactly once.
TEST(ChaosRetryTest, RetriedInsertCommitsExactlyOnceDurable) {
  InjectorGuard guard;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("svc_chaos_retry_" + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(dir);

  DurableOptions dopts;
  dopts.data_dir = dir;
  auto engine = DurableEngine::Open(dopts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions sopts;
  auto server = std::make_unique<SvcServer>(sopts, *engine);
  ASSERT_TRUE(server->Start().ok());

  auto client = SvcClient::Connect(RetryingClientOptions(server->port()));
  ASSERT_TRUE(client.ok());
  SVC_ASSERT_OK((*client)
                    ->Execute("CREATE TABLE t (k INT, v INT, PRIMARY KEY (k));")
                    .status());
  SVC_ASSERT_OK((*client)->Execute("INSERT INTO t VALUES (1, 10);").status());

  FaultInjector::Net().Arm("conn.drop_response", 1);
  auto retried = (*client)->Execute("INSERT INTO t VALUES (2, 20);");
  SVC_ASSERT_OK(retried.status());
  FaultInjector::Net().Disarm();
  // The replay is the journaled response, byte-identical to a normal ack —
  // not a special "already applied" synthesis (that is reserved for marks
  // recovered without their frame; see the crash test).
  EXPECT_NE(retried->message.find("queued"), std::string::npos);

  SVC_ASSERT_OK((*client)->Execute("REFRESH ALL;").status());
  auto rows = (*client)->Execute("SELECT k, v FROM t;");
  SVC_ASSERT_OK(rows.status());
  EXPECT_EQ(rows->rows.NumRows(), 2u);

  EXPECT_GE((*client)->retries(), 1u);
  EXPECT_GE((*client)->reconnects(), 1u);
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.net_faults_injected, 1u);
  EXPECT_EQ(stats.idem_replays, 1u);

  server.reset();
  std::filesystem::remove_all(dir);
}

// ---- Crash between commit and response ---------------------------------------

// The hardest window: the server crashes *after* a write's WAL append but
// *before* its response leaves the process. The client cannot know whether
// the write landed — only the recovered idempotency mark can say. A forked
// child serves a durable directory and dies at the armed crash site; the
// parent restarts a server over the recovered directory on the same port;
// the retrying client converges with every statement applied exactly once,
// and the final state matches a replica that never crashed.
TEST(ChaosCrashTest, CrashBeforeResponseConvergesViaRetry) {
  InjectorGuard guard;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("svc_chaos_crash_" + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  int port_pipe[2];
  ASSERT_EQ(pipe(port_pipe), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: serve the directory and crash with the response to the 4th
    // request (Hello=1, so that is the second INSERT) still unsent — its
    // WAL record, idempotency mark included, is already durable.
    close(port_pipe[0]);
    FaultInjector::Global().Arm("server.pre_response", 4);
    DurableOptions dopts;
    dopts.data_dir = dir;
    auto engine = DurableEngine::Open(dopts);
    if (!engine.ok()) _exit(3);
    ServerOptions sopts;
    SvcServer server(sopts, *engine);
    if (!server.Start().ok()) _exit(4);
    const uint16_t port = server.port();
    if (write(port_pipe[1], &port, sizeof(port)) !=
        static_cast<ssize_t>(sizeof(port))) {
      _exit(5);
    }
    for (;;) pause();  // the armed site kills us from a worker thread
  }
  close(port_pipe[1]);
  uint16_t port = 0;
  ASSERT_EQ(read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  close(port_pipe[0]);

  const std::vector<std::string> stmts = {
      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k));",
      "INSERT INTO t VALUES (1, 10);",
      "INSERT INTO t VALUES (2, 20);",  // response 4: the crash window
      "INSERT INTO t VALUES (3, 30);",
      "REFRESH ALL;",
  };
  std::vector<std::string> outcomes(stmts.size());
  std::atomic<bool> driver_ok{true};
  std::thread driver([&] {
    ClientOptions copts;
    copts.port = port;
    copts.max_retries = 60;  // must span the crash + restart gap
    copts.recv_timeout_ms = 250;
    copts.backoff_initial_ms = 10;
    copts.backoff_max_ms = 100;
    auto c = SvcClient::Connect(copts);
    if (!c.ok()) {
      driver_ok = false;
      return;
    }
    for (size_t i = 0; i < stmts.size(); ++i) {
      auto r = (*c)->Execute(stmts[i]);
      if (!r.ok()) {
        driver_ok = false;
        outcomes[i] = "ERR|" + r.status().ToString();
        return;
      }
      outcomes[i] = r->message;
    }
  });

  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode);

  // Restart over the recovered directory, on the same port (SO_REUSEADDR;
  // a few rebind attempts tolerate lingering TIME_WAIT conns).
  DurableOptions dopts;
  dopts.data_dir = dir;
  auto engine = DurableEngine::Open(dopts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ServerOptions sopts;
  sopts.port = port;
  std::unique_ptr<SvcServer> server;
  Status started = Status::Unavailable("not started");
  for (int i = 0; i < 40 && !started.ok(); ++i) {
    server = std::make_unique<SvcServer>(sopts, *engine);
    started = server->Start();
    if (!started.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_TRUE(started.ok()) << started.ToString();

  driver.join();
  EXPECT_TRUE(driver_ok.load());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE(stmts[i]);
    EXPECT_EQ(outcomes[i].find("ERR|"), std::string::npos) << outcomes[i];
  }
  // The write in the crash window was acked from its recovered idempotency
  // mark — durably applied, not re-executed.
  EXPECT_NE(outcomes[2].find("already applied"), std::string::npos)
      << outcomes[2];
  EXPECT_GE(server->stats().idem_replays, 1u);

  // Final state: bit-identical rows to a replica that never crashed.
  SqlSession replica(EngineHandle::Private());
  for (const std::string& s : stmts) SVC_ASSERT_OK((replica.Execute(s)).status());
  auto want = replica.Execute("SELECT k, v FROM t;");
  SVC_ASSERT_OK(want.status());
  ClientOptions copts;
  copts.port = port;
  auto reader = SvcClient::Connect(copts);
  ASSERT_TRUE(reader.ok());
  auto got = (*reader)->Execute("SELECT k, v FROM t;");
  SVC_ASSERT_OK(got.status());
  EXPECT_EQ(testing_util::EncodedRows(got->rows),
            testing_util::EncodedRows(want->rows));

  server.reset();
  engine->reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace svc
