// Snapshot semantics of SharedEngine (core/shared_engine.h): epochs,
// reader isolation from writer commits, atomicity of failed commits, and
// the transactional MaintainAll that backs REFRESH in both engine modes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/shared_engine.h"
#include "core/svc.h"
#include "sql/planner.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

constexpr char kVisitViewSql[] =
    "SELECT Log.videoId, COUNT(1) AS visitCount "
    "FROM Log, Video WHERE Log.videoId = Video.videoId "
    "GROUP BY Log.videoId";

/// A SharedEngine over the running example with visitView materialized.
std::unique_ptr<SharedEngine> MakeSharedEngine() {
  auto shared = std::make_unique<SharedEngine>(MakeLogVideoDb());
  PlanPtr def =
      SqlToPlan(kVisitViewSql, shared->Snapshot()->engine.db()).value();
  EXPECT_TRUE(shared->CreateView("visitView", std::move(def)).ok());
  return shared;
}

double StaleSum(const SvcEngine& engine) {
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  return engine.QueryStale("visitView", q).value();
}

TEST(SharedEngineTest, EpochAdvancesOncePerCommit) {
  SharedEngine shared(MakeLogVideoDb());
  EXPECT_EQ(shared.epoch(), 0u);
  SVC_ASSERT_OK(shared.InsertRecord("Log", {Value::Int(100), Value::Int(3)}));
  EXPECT_EQ(shared.epoch(), 1u);
  SVC_ASSERT_OK(shared.Commit([](SvcEngine* e) {
    return e->InsertRecord("Log", {Value::Int(101), Value::Int(2)});
  }));
  EXPECT_EQ(shared.epoch(), 2u);
}

TEST(SharedEngineTest, ReadersKeepTheirSnapshotAcrossCommits) {
  auto shared = MakeSharedEngine();
  SnapshotPtr before = shared->Snapshot();
  const double sum_before = StaleSum(before->engine);
  const uint64_t epoch_before = before->epoch;

  // Ingest + refresh behind the reader's back.
  SVC_ASSERT_OK(
      shared->InsertRecord("Log", {Value::Int(100), Value::Int(3)}));
  SVC_ASSERT_OK(shared->Refresh());

  // The old snapshot is bit-stable: same epoch, same pending queue, same
  // stale answer; the new head has moved on.
  EXPECT_EQ(before->epoch, epoch_before);
  EXPECT_TRUE(before->engine.IsStale() == false);
  EXPECT_EQ(StaleSum(before->engine), sum_before);
  SnapshotPtr after = shared->Snapshot();
  EXPECT_EQ(after->epoch, epoch_before + 2);
  EXPECT_EQ(StaleSum(after->engine), sum_before + 1.0);
}

TEST(SharedEngineTest, PreRefreshSnapshotStillSeesPendingDeltas) {
  auto shared = MakeSharedEngine();
  SVC_ASSERT_OK(
      shared->InsertRecord("Log", {Value::Int(100), Value::Int(3)}));
  SnapshotPtr stale_snap = shared->Snapshot();
  ASSERT_TRUE(stale_snap->engine.IsStale());

  SVC_ASSERT_OK(shared->Refresh());
  ASSERT_FALSE(shared->Snapshot()->engine.IsStale());

  // The pre-refresh snapshot still answers SVC queries from its stale view
  // + pending deltas, and its correction still reflects the delta.
  EXPECT_TRUE(stale_snap->engine.IsStale());
  SvcQueryOptions opts;
  opts.ratio = 1.0;
  opts.mode = EstimatorMode::kCorr;
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer ans,
                           stale_snap->engine.Query("visitView", q, opts));
  // Full-ratio CORR on the stale snapshot equals the fresh head's exact
  // stale answer (the view is now maintained there).
  EXPECT_DOUBLE_EQ(ans.estimate.value, StaleSum(shared->Snapshot()->engine));
}

TEST(SharedEngineTest, FailedCommitPublishesNothing) {
  auto shared = MakeSharedEngine();
  const uint64_t epoch = shared->epoch();
  Status st = shared->Commit([](SvcEngine* e) {
    // Mutate, then fail: the mutation must be discarded with the fork.
    SVC_RETURN_IF_ERROR(
        e->InsertRecord("Log", {Value::Int(100), Value::Int(3)}));
    return Status::InvalidArgument("simulated failure after a mutation");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(shared->epoch(), epoch);
  EXPECT_FALSE(shared->Snapshot()->engine.IsStale());
}

TEST(SharedEngineTest, CreateTableAndDuplicateKeyAreSerializedSafely) {
  SharedEngine shared(Database{});
  Table t(Schema({{"", "id", ValueType::kInt}}));
  SVC_ASSERT_OK(t.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(shared.CreateTable("T", std::move(t)));
  Table dup(Schema({{"", "id", ValueType::kInt}}));
  EXPECT_FALSE(shared.CreateTable("T", std::move(dup)).ok());
  EXPECT_EQ(shared.epoch(), 1u);  // only the successful commit published
}

// ---- Transactional MaintainAll (the REFRESH error-path fix) ---------------

TEST(SharedEngineTest, FailedRefreshLeavesEngineUntouched) {
  // Queue a delta whose primary key duplicates a committed Log row: view
  // maintenance succeeds but the base-table commit must fail — and with it
  // the whole refresh, atomically.
  SvcEngine engine(MakeLogVideoDb());
  PlanPtr def = SqlToPlan(kVisitViewSql, *engine.db()).value();
  SVC_ASSERT_OK(engine.CreateView("visitView", std::move(def)));
  SVC_ASSERT_OK(engine.InsertRecord("Log", {Value::Int(0), Value::Int(2)}));

  const double stale_before = StaleSum(engine);
  const size_t base_rows_before =
      engine.db()->GetTable("Log").value()->NumRows();

  Status st = engine.MaintainAll();
  EXPECT_FALSE(st.ok()) << "duplicate-key commit should fail";

  // Nothing moved: the pending queue, the view table, and the base table
  // are exactly as before the failed refresh.
  EXPECT_TRUE(engine.IsStale());
  EXPECT_EQ(engine.pending().TotalInserts(), 1u);
  EXPECT_EQ(StaleSum(engine), stale_before);
  EXPECT_EQ(engine.db()->GetTable("Log").value()->NumRows(),
            base_rows_before);
}

// ---- Geometric chunk compaction (DeltaSet::CompactChunks) -----------------

TEST(SharedEngineTest, ThousandCommitMaintenancePeriodStaysCompact) {
  // One insert per commit for a thousand commits between REFRESHes: the
  // CoW queue seals one chunk per fork, so without compaction the pending
  // queue would hold ~1000 chunks (and catalog names). The geometric
  // policy bounds it at 2*log2(rows) (+1 pre-compaction, +1 tail).
  auto shared = MakeSharedEngine();
  for (int64_t i = 0; i < 1000; ++i) {
    SVC_ASSERT_OK(shared->InsertRecord(
        "Log", {Value::Int(1000 + i), Value::Int(i % 5 + 1)}));
  }
  SnapshotPtr snap = shared->Snapshot();
  EXPECT_EQ(snap->engine.pending().InsertRows("Log"), 1000u);
  const size_t kBound = 2 * 10 + 2;  // cap for 1000 rows, +1 growth slack
  EXPECT_LE(snap->engine.pending().InsertTableNames("Log").size(), kBound);
  // The catalog must not accumulate stale chunk names from wider,
  // pre-compaction registrations (Register drops trailing leftovers).
  size_t chunk_names = 0;
  for (const auto& name : snap->engine.db().TableNames()) {
    if (name.rfind("__ins_Log@", 0) == 0) ++chunk_names;
  }
  EXPECT_LE(chunk_names, kBound);

  // Chunking-independence: a private engine that queued the same rows
  // without any forking (one big tail) answers bit-identically.
  SvcEngine flat(MakeLogVideoDb());
  SVC_ASSERT_OK(flat.CreateView(
      "visitView", SqlToPlan(kVisitViewSql, *flat.db()).value()));
  for (int64_t i = 0; i < 1000; ++i) {
    SVC_ASSERT_OK(flat.InsertRecord(
        "Log", {Value::Int(1000 + i), Value::Int(i % 5 + 1)}));
  }
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  SvcQueryOptions opts;
  opts.ratio = 0.5;
  SvcAnswer chunked = snap->engine.Query("visitView", q, opts).value();
  SvcAnswer tail_only = flat.Query("visitView", q, opts).value();
  EXPECT_EQ(chunked.estimate.value, tail_only.estimate.value);
  EXPECT_EQ(chunked.estimate.ci_low, tail_only.estimate.ci_low);
  EXPECT_EQ(chunked.estimate.ci_high, tail_only.estimate.ci_high);
  EXPECT_EQ(chunked.estimate.sample_rows, tail_only.estimate.sample_rows);

  // REFRESH commits the full logical sequence regardless of chunking.
  SVC_ASSERT_OK(shared->Refresh());
  EXPECT_EQ(
      shared->Snapshot()->engine.db().GetTable("Log").value()->NumRows(),
      1010u);
  SVC_ASSERT_OK(flat.MaintainAll());
  EXPECT_EQ(StaleSum(shared->Snapshot()->engine), StaleSum(flat));
}

TEST(SharedEngineTest, FailedSharedRefreshKeepsHeadAndPendingIntact) {
  auto shared = MakeSharedEngine();
  SVC_ASSERT_OK(shared->Commit([](SvcEngine* e) {
    return e->InsertRecord("Log", {Value::Int(0), Value::Int(2)});
  }));
  const uint64_t epoch = shared->epoch();
  EXPECT_FALSE(shared->Refresh().ok());
  EXPECT_EQ(shared->epoch(), epoch);
  EXPECT_EQ(shared->Snapshot()->engine.pending().TotalInserts(), 1u);
}

}  // namespace
}  // namespace svc
