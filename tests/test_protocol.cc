// Wire-protocol codec tests (server/protocol.h): framing against torn,
// corrupt, and hostile input, plus round-trips for every body codec and the
// exhaustive Status <-> wire-code mapping. Socket-level behavior (unknown
// tags answered with Error frames, overload, Hello ordering) lives in
// tests/test_server.cc.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "storage/serde.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::EncodedRows;

Frame MakeFrame(FrameTag tag, uint32_t request_id, std::string body) {
  Frame f;
  f.tag = tag;
  f.request_id = request_id;
  f.body = std::move(body);
  return f;
}

TEST(ProtocolFraming, RoundTripsTagRequestIdAndBody) {
  std::string wire;
  EncodeFrame(MakeFrame(FrameTag::kQuery, 42, "SELECT 1"), &wire);
  SVC_ASSERT_OK_AND_ASSIGN(std::optional<Frame> got,
                           TryDecodeFrame(&wire, kDefaultMaxFrameBytes));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, FrameTag::kQuery);
  EXPECT_EQ(got->request_id, 42u);
  EXPECT_EQ(got->body, "SELECT 1");
  EXPECT_TRUE(wire.empty()) << "frame bytes must be consumed";
}

TEST(ProtocolFraming, TruncatedPrefixesAreIncompleteNotErrors) {
  std::string full;
  EncodeFrame(MakeFrame(FrameTag::kQuery, 7, "SELECT a FROM t"), &full);
  // Every strict prefix — mid-header, mid-payload — decodes to "need more
  // bytes" and leaves the buffer untouched.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::string buf = full.substr(0, cut);
    auto r = TryDecodeFrame(&buf, kDefaultMaxFrameBytes);
    SVC_ASSERT_OK(r.status());
    EXPECT_FALSE(r->has_value()) << "prefix of " << cut << " bytes";
    EXPECT_EQ(buf.size(), cut);
  }
}

TEST(ProtocolFraming, OversizedFrameIsAProtocolError) {
  std::string wire;
  EncodeFrame(MakeFrame(FrameTag::kQuery, 1, std::string(1024, 'x')), &wire);
  // A tiny limit turns the declared length itself into the attack: the
  // decoder must refuse before buffering the body.
  auto r = TryDecodeFrame(&wire, /*max_frame_bytes=*/64);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocol);
}

TEST(ProtocolFraming, CrcMismatchIsAProtocolError) {
  std::string wire;
  EncodeFrame(MakeFrame(FrameTag::kQuery, 9, "SELECT 1"), &wire);
  wire[kFrameHeaderBytes + 3] ^= 0x01;  // flip one payload bit
  auto r = TryDecodeFrame(&wire, kDefaultMaxFrameBytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocol);
}

TEST(ProtocolFraming, UndersizedPayloadIsAProtocolError) {
  // A frame whose payload is shorter than tag + request id cannot carry a
  // message; hand-build one with a correct CRC so only the length is bad.
  const std::string payload = "\x02";  // tag only, no request id
  std::string wire;
  PutU32(&wire, static_cast<uint32_t>(payload.size()));
  PutU32(&wire, Crc32(payload));
  wire += payload;
  auto r = TryDecodeFrame(&wire, kDefaultMaxFrameBytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocol);
}

TEST(ProtocolFraming, PipelinedFramesDecodeInOrder) {
  std::string wire;
  EncodeFrame(MakeFrame(FrameTag::kQuery, 1, "first"), &wire);
  EncodeFrame(MakeFrame(FrameTag::kQuery, 2, "second"), &wire);
  SVC_ASSERT_OK_AND_ASSIGN(std::optional<Frame> a,
                           TryDecodeFrame(&wire, kDefaultMaxFrameBytes));
  SVC_ASSERT_OK_AND_ASSIGN(std::optional<Frame> b,
                           TryDecodeFrame(&wire, kDefaultMaxFrameBytes));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->request_id, 1u);
  EXPECT_EQ(a->body, "first");
  EXPECT_EQ(b->request_id, 2u);
  EXPECT_EQ(b->body, "second");
  EXPECT_TRUE(wire.empty());
}

// ---- Status <-> wire codes --------------------------------------------------

TEST(ProtocolCodes, EveryStatusCodeRoundTrips) {
  const StatusCode all[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kNotSupported, StatusCode::kOutOfRange,
      StatusCode::kInternal,     StatusCode::kParseError,
      StatusCode::kUnknownRelation, StatusCode::kConstraintViolation,
      StatusCode::kOverloaded,   StatusCode::kProtocol,
      StatusCode::kUnavailable,  StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : all) {
    EXPECT_EQ(StatusCodeFromWire(WireCodeOf(code)), code);
  }
}

TEST(ProtocolCodes, WireNumbersArePinned) {
  // docs/PROTOCOL.md's table; renumbering breaks deployed clients.
  EXPECT_EQ(WireCodeOf(StatusCode::kOk), 0);
  EXPECT_EQ(WireCodeOf(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(WireCodeOf(StatusCode::kNotFound), 2);
  EXPECT_EQ(WireCodeOf(StatusCode::kAlreadyExists), 3);
  EXPECT_EQ(WireCodeOf(StatusCode::kNotSupported), 4);
  EXPECT_EQ(WireCodeOf(StatusCode::kOutOfRange), 5);
  EXPECT_EQ(WireCodeOf(StatusCode::kInternal), 6);
  EXPECT_EQ(WireCodeOf(StatusCode::kParseError), 7);
  EXPECT_EQ(WireCodeOf(StatusCode::kUnknownRelation), 8);
  EXPECT_EQ(WireCodeOf(StatusCode::kConstraintViolation), 9);
  EXPECT_EQ(WireCodeOf(StatusCode::kOverloaded), 10);
  EXPECT_EQ(WireCodeOf(StatusCode::kProtocol), 11);
  EXPECT_EQ(WireCodeOf(StatusCode::kUnavailable), 12);
  EXPECT_EQ(WireCodeOf(StatusCode::kDeadlineExceeded), 13);
}

TEST(ProtocolCodes, RetryableStatusesAreExactlyTransportAndOverload) {
  // Retry safety: kUnavailable (transport death; idempotency dedup covers
  // the maybe-it-landed case) and kOverloaded (shed before execution) are
  // the only codes a client may re-send on. kDeadlineExceeded in particular
  // must NOT be retryable — the statement may have partially run.
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kOverloaded));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kParseError));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kProtocol));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kConstraintViolation));
}

TEST(ProtocolCodes, UnknownWireCodeDecodesAsInternal) {
  EXPECT_EQ(StatusCodeFromWire(0xEE), StatusCode::kInternal);
}

// ---- Body codecs ------------------------------------------------------------

TEST(ProtocolBodies, HelloRoundTrips) {
  HelloRequest req;
  req.max_version = 3;
  req.client_name = "test-client";
  std::string body;
  EncodeHelloRequest(req, &body);
  SVC_ASSERT_OK_AND_ASSIGN(HelloRequest got, DecodeHelloRequest(body));
  EXPECT_EQ(got.max_version, 3u);
  EXPECT_EQ(got.client_name, "test-client");

  HelloReply reply;
  reply.version = 1;
  reply.server_name = "svc_served";
  body.clear();
  EncodeHelloReply(reply, &body);
  SVC_ASSERT_OK_AND_ASSIGN(HelloReply rgot, DecodeHelloReply(body));
  EXPECT_EQ(rgot.version, 1u);
  EXPECT_EQ(rgot.server_name, "svc_served");
}

TEST(ProtocolBodies, ErrorBodyCarriesCodeAndMessage) {
  std::string body;
  EncodeErrorBody(Status::UnknownRelation("no such view: v"), &body);
  const Status got = DecodeErrorBody(body);
  EXPECT_EQ(got.code(), StatusCode::kUnknownRelation);
  EXPECT_EQ(got.message(), "no such view: v");
}

TEST(ProtocolBodies, MalformedErrorBodyDegradesToProtocol) {
  EXPECT_EQ(DecodeErrorBody("").code(), StatusCode::kProtocol);
  EXPECT_EQ(DecodeErrorBody("\x01").code(), StatusCode::kProtocol);
}

TEST(ProtocolBodies, OkCodedErrorBodyDegradesToProtocol) {
  // An Error frame claiming success would trip Result's invariant on the
  // client; the decoder refuses it instead.
  std::string body;
  PutU8(&body, 0);  // wire code kOk
  PutStr(&body, "not actually an error");
  EXPECT_EQ(DecodeErrorBody(body).code(), StatusCode::kProtocol);
}

TEST(ProtocolBodies, OkResultRoundTrips) {
  SqlResult result;
  result.kind = SqlResultKind::kOk;
  result.message = "created table t";
  std::string body;
  const FrameTag tag = EncodeSqlResultBody(result, &body);
  EXPECT_EQ(tag, FrameTag::kOk);
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult got, DecodeSqlResultBody(tag, body));
  EXPECT_EQ(got.kind, SqlResultKind::kOk);
  EXPECT_EQ(got.message, "created table t");
}

TEST(ProtocolBodies, RowsResultRoundTripsBitExact) {
  Table t(Schema({{"", "a", ValueType::kInt}, {"", "b", ValueType::kDouble}}));
  SVC_ASSERT_OK(t.Insert({Value::Int(1), Value::Double(1.5)}));
  SVC_ASSERT_OK(t.Insert({Value::Int(2), Value::Double(2.5)}));
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.rows = t;
  result.message = "2 row(s)";
  std::string body;
  const FrameTag tag = EncodeSqlResultBody(result, &body);
  EXPECT_EQ(tag, FrameTag::kResultSet);
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult got, DecodeSqlResultBody(tag, body));
  EXPECT_EQ(got.kind, SqlResultKind::kRows);
  EXPECT_EQ(got.message, "2 row(s)");
  EXPECT_EQ(EncodedRows(got.rows), EncodedRows(t));
}

TEST(ProtocolBodies, EstimateResultCarriesMode) {
  Table t(Schema({{"", "estimate", ValueType::kDouble}}));
  SVC_ASSERT_OK(t.Insert({Value::Double(3.25)}));
  for (EstimatorMode mode : {EstimatorMode::kAqp, EstimatorMode::kCorr}) {
    SqlResult result;
    result.kind = SqlResultKind::kEstimate;
    result.rows = t;
    result.message = "estimate";
    result.mode_used = mode;
    std::string body;
    const FrameTag tag = EncodeSqlResultBody(result, &body);
    EXPECT_EQ(tag, FrameTag::kEstimate);
    SVC_ASSERT_OK_AND_ASSIGN(SqlResult got, DecodeSqlResultBody(tag, body));
    EXPECT_EQ(got.kind, SqlResultKind::kEstimate);
    EXPECT_EQ(got.mode_used, mode);
    EXPECT_EQ(EncodedRows(got.rows), EncodedRows(t));
  }
}

TEST(ProtocolBodies, EstimateResultCarriesDegradedFlag) {
  Table t(Schema({{"", "estimate", ValueType::kDouble}}));
  SVC_ASSERT_OK(t.Insert({Value::Double(3.25)}));
  for (bool degraded : {false, true}) {
    SqlResult result;
    result.kind = SqlResultKind::kEstimate;
    result.rows = t;
    result.message = "estimate";
    result.mode_used = EstimatorMode::kCorr;
    result.degraded = degraded;
    std::string body;
    const FrameTag tag = EncodeSqlResultBody(result, &body);
    ASSERT_EQ(tag, FrameTag::kEstimate);
    // The flag is the unconditional final byte — a v1 decoder stops after
    // the table and never reads it.
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.back(), degraded ? '\1' : '\0');
    SVC_ASSERT_OK_AND_ASSIGN(SqlResult got, DecodeSqlResultBody(tag, body));
    EXPECT_EQ(got.degraded, degraded);
  }
}

TEST(ProtocolBodies, EstimateFromV1PeerDecodesAsNotDegraded) {
  // A v1 server's estimate body ends at the table. The decoder must accept
  // it and default the degraded flag off.
  Table t(Schema({{"", "estimate", ValueType::kDouble}}));
  SVC_ASSERT_OK(t.Insert({Value::Double(3.25)}));
  SqlResult result;
  result.kind = SqlResultKind::kEstimate;
  result.rows = t;
  result.message = "estimate";
  result.mode_used = EstimatorMode::kAqp;
  std::string body;
  const FrameTag tag = EncodeSqlResultBody(result, &body);
  body.pop_back();  // strip the v2 trailing degraded byte
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult got, DecodeSqlResultBody(tag, body));
  EXPECT_EQ(got.kind, SqlResultKind::kEstimate);
  EXPECT_FALSE(got.degraded);
}

TEST(ProtocolBodies, RequestMetaRoundTrips) {
  RequestMeta meta;
  meta.deadline_ms = 250;
  meta.idem_token = "c#1.2";
  meta.idem_seq = 7;
  ASSERT_FALSE(meta.empty());
  std::string tail;
  AppendRequestMeta(meta, &tail);
  ByteReader r(tail);
  SVC_ASSERT_OK_AND_ASSIGN(RequestMeta got, DecodeRequestMetaTail(&r));
  EXPECT_EQ(got.deadline_ms, 250u);
  EXPECT_EQ(got.idem_token, "c#1.2");
  EXPECT_EQ(got.idem_seq, 7u);
}

TEST(ProtocolBodies, EmptyRequestMetaEncodesToNothing) {
  // All-defaults meta appends zero bytes, so a v2 client that sets neither
  // a deadline nor retries emits bodies byte-identical to a v1 client's.
  RequestMeta meta;
  ASSERT_TRUE(meta.empty());
  std::string tail;
  AppendRequestMeta(meta, &tail);
  EXPECT_TRUE(tail.empty());
  // And decoding a body with no trailing bytes (a v1 peer) yields the
  // empty meta rather than an error.
  ByteReader r(tail);
  SVC_ASSERT_OK_AND_ASSIGN(RequestMeta got, DecodeRequestMetaTail(&r));
  EXPECT_TRUE(got.empty());
}

TEST(ProtocolBodies, TruncatedRequestMetaTailIsAnError) {
  RequestMeta meta;
  meta.deadline_ms = 250;
  meta.idem_token = "c#1.2";
  meta.idem_seq = 7;
  std::string tail;
  AppendRequestMeta(meta, &tail);
  tail.resize(tail.size() - 3);  // tear the trailing u64 seq
  ByteReader r(tail);
  EXPECT_FALSE(DecodeRequestMetaTail(&r).ok());
}

TEST(ProtocolBodies, TruncatedResultBodyIsAnError) {
  Table t(Schema({{"", "a", ValueType::kInt}}));
  SVC_ASSERT_OK(t.Insert({Value::Int(1)}));
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.rows = t;
  result.message = "1 row(s)";
  std::string body;
  const FrameTag tag = EncodeSqlResultBody(result, &body);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeSqlResultBody(tag, body.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ProtocolBodies, ExecuteBodyRoundTripsValues) {
  const std::vector<Value> params = {Value::Int(-3), Value::Double(2.5),
                                     Value::String("abc"), Value::Null()};
  std::string body;
  EncodeExecuteBody(77, params, &body);
  SVC_ASSERT_OK_AND_ASSIGN(ExecuteRequest got, DecodeExecuteBody(body));
  EXPECT_EQ(got.stmt_id, 77u);
  ASSERT_EQ(got.params.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(got.params[i] == params[i]) << "param " << i;
  }
}

TEST(ProtocolBodies, PreparedBodyRoundTrips) {
  std::string body;
  EncodePreparedBody(5, 2, &body);
  SVC_ASSERT_OK_AND_ASSIGN(PreparedReply got, DecodePreparedBody(body));
  EXPECT_EQ(got.stmt_id, 5u);
  EXPECT_EQ(got.num_params, 2u);
}

TEST(ProtocolBodies, StatsBodyRoundTrips) {
  const std::map<std::string, uint64_t> stats = {
      {"requests", 12}, {"statements_parsed", 7}, {"prepared_executes", 5}};
  std::string body;
  EncodeStatsBody(stats, &body);
  SVC_ASSERT_OK_AND_ASSIGN(auto got, DecodeStatsBody(body));
  EXPECT_EQ(got, stats);
}

}  // namespace
}  // namespace svc
