// WAL framing and replay (storage/wal.h): append/replay round-trips,
// fsync policies, and the torn-vs-corrupt distinction — a final record
// truncated at EVERY byte offset recovers gracefully to the last complete
// record (warning, never an error), while a CRC flip mid-log is corruption
// with a diagnostic naming the byte offset.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/serde.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace svc {
namespace {

/// A fresh scratch file path inside a per-test temp dir.
class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/svc_wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/test.log";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string ReadFileBytes() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void WriteFileBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
  std::string path_;
};

std::vector<std::string> ReplayAll(const std::string& path,
                                   WalReplayInfo* info, Status* st) {
  std::vector<std::string> payloads;
  *st = ReplayWal(
      path,
      [&](std::string_view p) {
        payloads.emplace_back(p);
        return Status::OK();
      },
      info);
  return payloads;
}

TEST_F(WalTest, AppendReplayRoundTrip) {
  {
    WalWriter w = WalWriter::Open(path_, WalOptions{}).value();
    SVC_ASSERT_OK(w.Append("first"));
    SVC_ASSERT_OK(w.Append(""));  // empty payloads are legal frames
    SVC_ASSERT_OK(w.Append(std::string(100000, 'x')));
    EXPECT_EQ(w.records(), 3u);
    EXPECT_EQ(w.bytes(), 3 * 8 + 5 + 0 + 100000u);
  }
  WalReplayInfo info;
  Status st;
  std::vector<std::string> got = ReplayAll(path_, &info, &st);
  SVC_ASSERT_OK(st);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_EQ(info.records, 3u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "");
  EXPECT_EQ(got[2], std::string(100000, 'x'));
  EXPECT_EQ(info.valid_bytes, std::filesystem::file_size(path_));
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  WalReplayInfo info;
  Status st;
  std::vector<std::string> got = ReplayAll(dir_ + "/absent.log", &info, &st);
  SVC_ASSERT_OK(st);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(info.records, 0u);
  EXPECT_FALSE(info.torn_tail);
}

TEST_F(WalTest, FsyncPoliciesAllProduceIdenticalFrames) {
  const char* payloads[] = {"a", "bb", "ccc"};
  std::string reference;
  for (auto spec : {"always", "off", "every=2"}) {
    std::filesystem::remove(path_);
    WalOptions opts = ParseFsyncSpec(spec).value();
    WalWriter w = WalWriter::Open(path_, opts).value();
    for (const char* p : payloads) SVC_ASSERT_OK(w.Append(p));
    SVC_ASSERT_OK(w.Sync());
    std::string bytes = ReadFileBytes();
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << spec;
    }
  }
}

TEST_F(WalTest, ParseFsyncSpecRejectsGarbage) {
  EXPECT_EQ(ParseFsyncSpec("always").value().policy, FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncSpec("off").value().policy, FsyncPolicy::kOff);
  WalOptions every = ParseFsyncSpec("every=3").value();
  EXPECT_EQ(every.policy, FsyncPolicy::kEveryN);
  EXPECT_EQ(every.interval, 3u);
  EXPECT_FALSE(ParseFsyncSpec("every=0").ok());
  EXPECT_FALSE(ParseFsyncSpec("every=").ok());
  EXPECT_FALSE(ParseFsyncSpec("sometimes").ok());
}

// The core graceful-degradation guarantee: whatever prefix of the final
// append made it to disk, recovery lands on the last complete record with
// a warning — never an error, never a lost earlier record.
TEST_F(WalTest, TruncationAtEveryByteOffsetOfFinalRecordRecovers) {
  {
    WalWriter w = WalWriter::Open(path_, WalOptions{}).value();
    SVC_ASSERT_OK(w.Append("intact-record-one"));
    SVC_ASSERT_OK(w.Append("intact-record-two"));
    SVC_ASSERT_OK(w.Append("the-final-record-that-tears"));
  }
  const std::string full = ReadFileBytes();
  const size_t final_frame =
      8 + std::string("the-final-record-that-tears").size();
  const size_t keep_prefix = full.size() - final_frame;

  for (size_t cut = keep_prefix; cut < full.size(); ++cut) {
    WriteFileBytes(full.substr(0, cut));
    WalReplayInfo info;
    Status st;
    std::vector<std::string> got = ReplayAll(path_, &info, &st);
    ASSERT_TRUE(st.ok()) << "cut=" << cut << ": " << st.ToString();
    ASSERT_EQ(got.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(got[0], "intact-record-one");
    EXPECT_EQ(got[1], "intact-record-two");
    EXPECT_EQ(info.records, 2u);
    EXPECT_EQ(info.valid_bytes, keep_prefix) << "cut=" << cut;
    if (cut == keep_prefix) {
      // Zero bytes of the final record: the log simply ends cleanly.
      EXPECT_FALSE(info.torn_tail);
    } else {
      EXPECT_TRUE(info.torn_tail) << "cut=" << cut;
      EXPECT_NE(info.warning.find("torn WAL tail"), std::string::npos);
    }
    // Truncating to valid_bytes then appending must produce a clean log.
    SVC_ASSERT_OK(TruncateFile(path_, info.valid_bytes));
    {
      WalWriter w = WalWriter::Open(path_, WalOptions{}).value();
      SVC_ASSERT_OK(w.Append("appended-after-recovery"));
    }
    WalReplayInfo info2;
    Status st2;
    std::vector<std::string> got2 = ReplayAll(path_, &info2, &st2);
    ASSERT_TRUE(st2.ok()) << "cut=" << cut;
    ASSERT_EQ(got2.size(), 3u) << "cut=" << cut;
    EXPECT_EQ(got2[2], "appended-after-recovery");
    EXPECT_FALSE(info2.torn_tail);
    // Restore the full log for the next iteration's fresh truncation.
    WriteFileBytes(full);
  }
}

TEST_F(WalTest, MidLogCorruptionIsAnErrorNamingTheOffset) {
  {
    WalWriter w = WalWriter::Open(path_, WalOptions{}).value();
    SVC_ASSERT_OK(w.Append("record-zero"));
    SVC_ASSERT_OK(w.Append("record-one"));
    SVC_ASSERT_OK(w.Append("record-two"));
  }
  std::string bytes = ReadFileBytes();
  // Flip one payload byte of the middle record: its frame is complete, so
  // this must be diagnosed as corruption (not a tear), naming the frame's
  // byte offset.
  const size_t frame1_off = 8 + std::string("record-zero").size();
  bytes[frame1_off + 8] ^= 0x01;  // first payload byte of record 1
  WriteFileBytes(bytes);

  WalReplayInfo info;
  Status st;
  std::vector<std::string> got = ReplayAll(path_, &info, &st);
  ASSERT_FALSE(st.ok());
  const std::string msg = st.ToString();
  EXPECT_NE(msg.find("CRC mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("offset " + std::to_string(frame1_off)),
            std::string::npos)
      << msg;
  // Replay stopped at the bad frame; record-zero was delivered.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "record-zero");

  // Flipping a stored-CRC byte (frame still complete) is also corruption.
  bytes = ReadFileBytes();
  bytes[frame1_off + 8] ^= 0x01;  // restore payload
  bytes[frame1_off + 4] ^= 0xff;  // mangle stored CRC
  WriteFileBytes(bytes);
  Status st2;
  ReplayAll(path_, &info, &st2);
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.ToString().find("CRC mismatch"), std::string::npos);
}

TEST_F(WalTest, ReplayCallbackErrorAborts) {
  {
    WalWriter w = WalWriter::Open(path_, WalOptions{}).value();
    SVC_ASSERT_OK(w.Append("a"));
    SVC_ASSERT_OK(w.Append("b"));
  }
  WalReplayInfo info;
  size_t calls = 0;
  Status st = ReplayWal(
      path_,
      [&](std::string_view) {
        ++calls;
        return Status::Internal("boom");
      },
      &info);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1u);
}

TEST_F(WalTest, FailedAppendRollsBackSoReplayCannotResurrectIt) {
  WalWriter w = WalWriter::Open(path_, WalOptions{}).value();
  SVC_ASSERT_OK(w.Append("first"));
  const uint64_t committed_bytes = std::filesystem::file_size(path_);

  // Force a real mid-frame write failure: cap the process file size so the
  // next append stops after 3 bytes with EFBIG (SIGXFSZ must be ignored or
  // the kernel kills the process instead of failing the write).
  struct rlimit old_limit;
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  auto old_handler = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit tight = old_limit;
  tight.rlim_cur = committed_bytes + 3;
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tight), 0);
  const Status failed = w.Append("reported-failed commit");
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);
  EXPECT_FALSE(failed.ok());

  // The partial frame was rolled back: the file is byte-identical to the
  // committed prefix, so recovery has nothing to resurrect (the caller was
  // told the commit failed) and the next append starts on a frame
  // boundary.
  EXPECT_EQ(std::filesystem::file_size(path_), committed_bytes);
  WalReplayInfo info;
  Status st;
  std::vector<std::string> got = ReplayAll(path_, &info, &st);
  SVC_ASSERT_OK(st);
  EXPECT_FALSE(info.torn_tail);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "first");

  // A successful rollback does not poison the writer.
  SVC_ASSERT_OK(w.Append("second"));
  got = ReplayAll(path_, &info, &st);
  SVC_ASSERT_OK(st);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "second");
}

}  // namespace
}  // namespace svc
