// Tests for the flat open-addressing key map (common/flat_map.h) and the
// RowKeyRef/KeyBuffer encoding layer (relational/row_key.h): key-encoding
// equality semantics (int/double coercion, NULL grouping, prefix-freeness)
// and the hash-collision/backward-shift behavior of the map itself.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/flat_map.h"
#include "relational/executor.h"
#include "relational/row_key.h"
#include "tests/test_util.h"

namespace svc {
namespace {

std::string Enc(const Value& v) {
  std::string s;
  v.EncodeTo(&s);
  return s;
}

// ---- Key-encoding equality semantics ----------------------------------------

TEST(RowKeyEncodingTest, IntDoubleCoercionProducesEqualKeys) {
  // 1 == 1.0 must group/join together, so their encodings must be equal.
  EXPECT_EQ(Enc(Value::Int(1)), Enc(Value::Double(1.0)));
  EXPECT_EQ(Enc(Value::Int(-3)), Enc(Value::Double(-3.0)));
  EXPECT_EQ(Enc(Value::Int(0)), Enc(Value::Double(0.0)));
  // Fractional doubles stay distinct from every int.
  EXPECT_NE(Enc(Value::Double(1.5)), Enc(Value::Int(1)));
  EXPECT_NE(Enc(Value::Double(1.5)), Enc(Value::Int(2)));
}

TEST(RowKeyEncodingTest, KeyBufferMatchesEncodeRowKey) {
  const Row row = {Value::Int(7), Value::String("abc"), Value::Double(2.5),
                   Value::Null()};
  const std::vector<size_t> idx = {0, 1, 2, 3};
  KeyBuffer kb;
  const RowKeyRef ref = kb.Encode(row, idx);
  EXPECT_EQ(std::string(ref.bytes), EncodeRowKey(row, idx));
  EXPECT_EQ(ref.hash, KeyHash(ref.bytes));
}

TEST(RowKeyEncodingTest, BufferReuseKeepsKeysIndependent) {
  KeyBuffer kb;
  const Row a = {Value::Int(1)};
  const Row b = {Value::Int(2)};
  const std::vector<size_t> idx = {0};
  const std::string first(kb.Encode(a, idx).bytes);
  const std::string second(kb.Encode(b, idx).bytes);
  EXPECT_NE(first, second);
  // Re-encoding `a` reproduces the first bytes exactly.
  EXPECT_EQ(std::string(kb.Encode(a, idx).bytes), first);
}

TEST(RowKeyEncodingTest, NullEncodesDistinctFromZeroAndEmpty) {
  EXPECT_NE(Enc(Value::Null()), Enc(Value::Int(0)));
  EXPECT_NE(Enc(Value::Null()), Enc(Value::String("")));
  EXPECT_EQ(Enc(Value::Null()), Enc(Value::Null()));
}

TEST(RowKeyEncodingTest, PrefixFreeness) {
  // No encoded value may be a prefix of another value's encoding with a
  // different decomposition: ("ab", "c") must differ from ("a", "bc"),
  // and ("x") from ("x", NULL).
  const Row r1 = {Value::String("ab"), Value::String("c")};
  const Row r2 = {Value::String("a"), Value::String("bc")};
  EXPECT_NE(EncodeRowKey(r1, {0, 1}), EncodeRowKey(r2, {0, 1}));

  const Row r3 = {Value::String("x"), Value::Null()};
  EXPECT_NE(EncodeRowKey(r3, {0}), EncodeRowKey(r3, {0, 1}));

  // A string whose bytes mimic an int encoding must not collide with it.
  std::string intlike = Enc(Value::Int(42));
  EXPECT_NE(Enc(Value::String(intlike)), intlike);
}

TEST(RowKeyEncodingTest, EncodeIfNonNullSkipsNullKeys) {
  KeyBuffer kb;
  RowKeyRef ref;
  const Row with_null = {Value::Int(1), Value::Null()};
  EXPECT_FALSE(kb.EncodeIfNonNull(with_null, {0, 1}, &ref));
  EXPECT_TRUE(kb.EncodeIfNonNull(with_null, {0}, &ref));
  EXPECT_EQ(std::string(ref.bytes), Enc(Value::Int(1)));
}

// ---- FlatKeyMap ------------------------------------------------------------

TEST(FlatKeyMapTest, InsertFindGrowth) {
  FlatKeyMap<size_t> map;
  const size_t n = 10000;  // forces many rehashes from the 16-slot start
  for (size_t i = 0; i < n; ++i) {
    auto [v, inserted] = map.Emplace("key" + std::to_string(i), i);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(*v, i);
  }
  EXPECT_EQ(map.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const size_t* v = map.Find("key" + std::to_string(i));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(map.Find("missing"), nullptr);
}

TEST(FlatKeyMapTest, EmplaceExistingReturnsOldValue) {
  FlatKeyMap<int> map;
  EXPECT_TRUE(map.Emplace("k", 1).second);
  auto [v, inserted] = map.Emplace("k", 2);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*v, 1);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatKeyMapTest, HashCollisionFallsBackToFullKeyCompare) {
  // Emplace takes the caller's hash, so we can force two different keys
  // onto the same 64-bit hash: the map must keep both and tell them apart
  // by comparing the full key bytes.
  FlatKeyMap<int> map;
  const uint64_t h = 0xdeadbeefcafef00dULL;
  EXPECT_TRUE(map.Emplace("first", h, 1).second);
  EXPECT_TRUE(map.Emplace("second", h, 2).second);
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find("first", h), nullptr);
  ASSERT_NE(map.Find("second", h), nullptr);
  EXPECT_EQ(*map.Find("first", h), 1);
  EXPECT_EQ(*map.Find("second", h), 2);
  EXPECT_EQ(map.Find("third", h), nullptr);
}

TEST(FlatKeyMapTest, CollidingKeysSurviveRehash) {
  FlatKeyMap<int> map;
  const uint64_t h = 42;  // everyone collides
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(map.Emplace("k" + std::to_string(i), h, i).second);
  }
  for (int i = 0; i < 100; ++i) {
    const int* v = map.Find("k" + std::to_string(i), h);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatKeyMapTest, EraseWithBackwardShiftKeepsProbeChainsIntact) {
  // All keys share one hash, forming a single probe cluster; erasing from
  // the middle must backward-shift so later keys remain findable.
  FlatKeyMap<int> map;
  const uint64_t h = 7;
  for (int i = 0; i < 20; ++i) {
    map.Emplace("c" + std::to_string(i), h, i);
  }
  for (int i = 0; i < 20; i += 2) {
    EXPECT_TRUE(map.Erase("c" + std::to_string(i), h));
  }
  EXPECT_EQ(map.size(), 10u);
  for (int i = 0; i < 20; ++i) {
    const int* v = map.Find("c" + std::to_string(i), h);
    if (i % 2 == 0) {
      EXPECT_EQ(v, nullptr) << i;
    } else {
      ASSERT_NE(v, nullptr) << i;
      EXPECT_EQ(*v, i);
    }
  }
  EXPECT_FALSE(map.Erase("c0", h));  // already gone
}

TEST(FlatKeyMapTest, LongKeysUseArenaAndCompactAfterErase) {
  FlatKeyMap<int> map;
  // Keys longer than the 12-byte inline budget exercise the arena path.
  auto key = [](int i) {
    return "long-key-well-beyond-inline-" + std::to_string(i);
  };
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(map.Emplace(key(i), i).second);
  for (int i = 0; i < 400; ++i) EXPECT_TRUE(map.Erase(key(i)));
  // Trigger the dead-byte compaction path with further churn.
  for (int i = 500; i < 900; ++i) ASSERT_TRUE(map.Emplace(key(i), i).second);
  EXPECT_EQ(map.size(), 500u);
  for (int i = 400; i < 900; ++i) {
    const int* v = map.Find(key(i));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  for (int i = 0; i < 400; ++i) EXPECT_EQ(map.Find(key(i)), nullptr);
}

TEST(FlatKeyMapTest, EmptyKeyIsAValidKey) {
  // A global aggregate groups every row under the empty key.
  FlatKeyMap<int> map;
  EXPECT_TRUE(map.Emplace("", 9).second);
  ASSERT_NE(map.Find(""), nullptr);
  EXPECT_EQ(*map.Find(""), 9);
  EXPECT_FALSE(map.Emplace("", 10).second);
}

TEST(FlatKeyMapTest, ForEachVisitsEveryLiveEntry) {
  FlatKeyMap<int> map;
  for (int i = 0; i < 50; ++i) map.Emplace("k" + std::to_string(i), i);
  for (int i = 0; i < 25; ++i) map.Erase("k" + std::to_string(i));
  int count = 0, sum = 0;
  map.ForEach([&](std::string_view key, const int& v) {
    ++count;
    sum += v;
    EXPECT_EQ(key, "k" + std::to_string(v));
  });
  EXPECT_EQ(count, 25);
  EXPECT_EQ(sum, 25 * (25 + 49) / 2);
}

TEST(KeySetTest, InsertContains) {
  KeySet set;
  EXPECT_TRUE(set.Insert("a"));
  EXPECT_FALSE(set.Insert("a"));
  EXPECT_TRUE(set.Insert("b"));
  EXPECT_TRUE(set.Contains("a"));
  EXPECT_TRUE(set.Contains("b"));
  EXPECT_FALSE(set.Contains("c"));
  EXPECT_EQ(set.size(), 2u);
}

// ---- Executor semantics riding on the new key machinery ---------------------

TEST(ExecutorKeySemanticsTest, GroupByCoercesIntAndDoubleKeys) {
  Database db;
  Table t(Schema({{"", "g", ValueType::kDouble}, {"", "x", ValueType::kInt}}));
  t.AppendUnchecked({Value::Int(1), Value::Int(10)});
  t.AppendUnchecked({Value::Double(1.0), Value::Int(20)});
  t.AppendUnchecked({Value::Double(1.5), Value::Int(30)});
  db.PutTable("T", std::move(t));
  auto r = ExecutePlan(*PlanNode::Aggregate(
                           PlanNode::Scan("T"), {"g"},
                           {{AggFunc::kSum, Expr::Col("x"), "s"}}),
                       db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->NumRows(), 2u);  // 1 and 1.0 share a group
  int64_t sum_group1 = 0;
  for (const auto& row : r->rows()) {
    if (row[0] == Value::Int(1)) sum_group1 = row[1].AsInt();
  }
  EXPECT_EQ(sum_group1, 30);
}

TEST(ExecutorKeySemanticsTest, NullsFormTheirOwnGroup) {
  Database db;
  Table t(Schema({{"", "g", ValueType::kInt}, {"", "x", ValueType::kInt}}));
  t.AppendUnchecked({Value::Null(), Value::Int(1)});
  t.AppendUnchecked({Value::Null(), Value::Int(2)});
  t.AppendUnchecked({Value::Int(0), Value::Int(4)});
  db.PutTable("T", std::move(t));
  auto r = ExecutePlan(*PlanNode::Aggregate(
                           PlanNode::Scan("T"), {"g"},
                           {{AggFunc::kSum, Expr::Col("x"), "s"}}),
                       db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->NumRows(), 2u);  // NULL group and 0 group are distinct
  for (const auto& row : r->rows()) {
    if (row[0].is_null()) {
      EXPECT_EQ(row[1].AsInt(), 3);
    } else {
      EXPECT_EQ(row[1].AsInt(), 4);
    }
  }
}

TEST(ExecutorKeySemanticsTest, JoinCoercesIntAndDoubleKeys) {
  Database db;
  Table a(Schema({{"", "k", ValueType::kInt}}));
  a.AppendUnchecked({Value::Int(2)});
  Table b(Schema({{"", "k", ValueType::kDouble}}));
  b.AppendUnchecked({Value::Double(2.0)});
  b.AppendUnchecked({Value::Double(2.5)});
  db.PutTable("A", std::move(a));
  db.PutTable("B", std::move(b));
  auto r = ExecutePlan(*PlanNode::Join(PlanNode::Scan("A", "a"),
                                       PlanNode::Scan("B", "b"),
                                       JoinType::kInner, {{"a.k", "b.k"}}),
                       db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->NumRows(), 1u);  // 2 matches 2.0, not 2.5
}

}  // namespace
}  // namespace svc
