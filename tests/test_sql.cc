#include <gtest/gtest.h>

#include "relational/executor.h"
#include "relational/keys.h"
#include "sql/planner.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : db_(MakeLogVideoDb()) {}

  Table Run(const std::string& sql) {
    auto plan = SqlToPlan(sql, db_);
    if (!plan.ok()) {
      ADD_FAILURE() << plan.status().ToString() << "\nSQL: " << sql;
      return Table();
    }
    auto t = ExecutePlan(**plan, db_);
    if (!t.ok()) {
      ADD_FAILURE() << t.status().ToString() << "\nSQL: " << sql;
      return Table();
    }
    return std::move(t).value();
  }

  Database db_;
};

TEST_F(SqlTest, SelectStar) {
  Table t = Run("SELECT * FROM Log");
  EXPECT_EQ(t.NumRows(), 10u);
  EXPECT_EQ(t.schema().NumColumns(), 2u);
}

TEST_F(SqlTest, Projection) {
  Table t = Run("SELECT videoId, sessionId + 100 AS sid FROM Log");
  EXPECT_EQ(t.schema().column(0).name, "videoId");
  EXPECT_EQ(t.schema().column(1).name, "sid");
  EXPECT_EQ(t.row(0)[1].AsInt(), t.row(0)[1].AsInt());
}

TEST_F(SqlTest, WhereFilter) {
  Table t = Run("SELECT * FROM Log WHERE videoId = 3");
  EXPECT_EQ(t.NumRows(), 4u);
}

TEST_F(SqlTest, WhereComplexPredicate) {
  Table t = Run(
      "SELECT * FROM Video WHERE duration >= 1.0 AND (ownerId = 101 OR "
      "ownerId = 102) AND NOT videoId = 5");
  for (const auto& r : t.rows()) {
    EXPECT_GE(r[2].ToDouble(), 1.0);
    EXPECT_NE(r[0].AsInt(), 5);
  }
}

TEST_F(SqlTest, BetweenDesugars) {
  Table t = Run("SELECT * FROM Video WHERE duration BETWEEN 1.0 AND 2.0");
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(SqlTest, CommaJoinExtractsKeys) {
  Table t = Run(
      "SELECT sessionId, ownerId FROM Log, Video "
      "WHERE Log.videoId = Video.videoId");
  EXPECT_EQ(t.NumRows(), 10u);
}

TEST_F(SqlTest, ExplicitJoinOn) {
  Table t = Run(
      "SELECT sessionId FROM Log l JOIN Video v ON l.videoId = v.videoId "
      "WHERE v.duration > 0.9");
  EXPECT_EQ(t.NumRows(), 7u);
}

TEST_F(SqlTest, LeftJoinKeepsUnmatched) {
  Table t = Run(
      "SELECT v.videoId, l.sessionId FROM Video v LEFT JOIN Log l "
      "ON v.videoId = l.videoId");
  EXPECT_EQ(t.NumRows(), 12u);
}

TEST_F(SqlTest, GroupByAggregates) {
  Table t = Run(
      "SELECT videoId, COUNT(1) AS visits, AVG(sessionId) AS avg_sid "
      "FROM Log GROUP BY videoId");
  EXPECT_EQ(t.NumRows(), 3u);
  SVC_ASSERT_OK_AND_ASSIGN(size_t visits, t.schema().Resolve("visits"));
  int64_t total = 0;
  for (const auto& r : t.rows()) total += r[visits].AsInt();
  EXPECT_EQ(total, 10);
}

TEST_F(SqlTest, PaperVisitView) {
  // The paper's running-example view, written in SQL.
  Table t = Run(
      "SELECT Log.videoId, COUNT(1) AS visitCount "
      "FROM Log, Video WHERE Log.videoId = Video.videoId "
      "GROUP BY Log.videoId");
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(SqlTest, HavingFiltersGroups) {
  Table t = Run(
      "SELECT videoId, COUNT(1) AS c FROM Log GROUP BY videoId "
      "HAVING c > 3");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0].AsInt(), 3);
}

TEST_F(SqlTest, AggregateWithArithmeticInput) {
  Table t = Run(
      "SELECT ownerId, SUM(duration * (1 - 0.5)) AS halved "
      "FROM Video GROUP BY ownerId");
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(SqlTest, SubqueryInFrom) {
  // Nested aggregation (the paper's V22 shape).
  Table t = Run(
      "SELECT c, COUNT(1) AS n FROM "
      "(SELECT videoId, COUNT(1) AS c FROM Log GROUP BY videoId) AS x "
      "GROUP BY c");
  // Visit counts are {3,3,4} -> groups {3: 2 videos, 4: 1 video}.
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(SqlTest, UnionDeduplicates) {
  Table t = Run(
      "SELECT videoId FROM Log UNION SELECT videoId FROM Video");
  EXPECT_EQ(t.NumRows(), 5u);
}

TEST_F(SqlTest, ExceptAndIntersect) {
  Table diff = Run(
      "SELECT videoId FROM Video EXCEPT SELECT videoId FROM Log");
  EXPECT_EQ(diff.NumRows(), 2u);
  Table inter = Run(
      "SELECT videoId FROM Video INTERSECT SELECT videoId FROM Log");
  EXPECT_EQ(inter.NumRows(), 3u);
}

TEST_F(SqlTest, CountDistinct) {
  Table t = Run("SELECT COUNT(DISTINCT ownerId) AS owners, videoId "
                "FROM Video GROUP BY videoId");
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.schema().column(0).name, "owners");
}

TEST_F(SqlTest, ScalarFunctionCalls) {
  Table t = Run("SELECT abs(0 - videoId) AS a FROM Video WHERE videoId = 3");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0].AsInt(), 3);
}

TEST_F(SqlTest, IsNullPredicate) {
  Table t = Run(
      "SELECT v.videoId FROM Video v LEFT JOIN Log l ON v.videoId = "
      "l.videoId WHERE l.sessionId IS NULL");
  EXPECT_EQ(t.NumRows(), 2u);  // videos 4, 5 unseen
}

TEST_F(SqlTest, ParsedViewWorksWithSvcKeyDerivation) {
  // End-to-end: SQL view definition -> plan -> key derivation.
  auto plan = SqlToPlan(
      "SELECT Log.videoId, COUNT(1) AS visitCount "
      "FROM Log, Video WHERE Log.videoId = Video.videoId "
      "GROUP BY Log.videoId",
      db_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  SVC_ASSERT_OK_AND_ASSIGN(auto pk, DerivePrimaryKeys(plan->get(), db_));
  EXPECT_EQ(pk.size(), 1u);
}

TEST_F(SqlTest, SyntaxErrors) {
  EXPECT_FALSE(SqlToPlan("SELECT FROM Log", db_).ok());
  EXPECT_FALSE(SqlToPlan("SELECT * Log", db_).ok());
  EXPECT_FALSE(SqlToPlan("SELECT * FROM Log WHERE", db_).ok());
  EXPECT_FALSE(SqlToPlan("SELECT * FROM Log GROUP BY", db_).ok());
  EXPECT_FALSE(SqlToPlan("SELECT * FROM NoSuchTable", db_).ok());
  EXPECT_FALSE(SqlToPlan("SELECT 'unterminated FROM Log", db_).ok());
}

TEST_F(SqlTest, NonGroupColumnRejected) {
  EXPECT_FALSE(SqlToPlan(
                   "SELECT sessionId, COUNT(1) FROM Log GROUP BY videoId",
                   db_)
                   .ok());
}

TEST_F(SqlTest, ParseScalarExprStandalone) {
  SVC_ASSERT_OK_AND_ASSIGN(ExprPtr e,
                           ParseScalarExpr("visitCount > 100 AND x < 2"));
  EXPECT_EQ(e->kind(), ExprKind::kBinary);
}

}  // namespace
}  // namespace svc
