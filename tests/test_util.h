#ifndef SVC_TESTS_TEST_UTIL_H_
#define SVC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/table.h"

namespace svc {
namespace testing_util {

/// gtest helper: asserts a Status is OK with a useful message.
#define SVC_ASSERT_OK(expr)                                 \
  do {                                                      \
    const ::svc::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

#define SVC_EXPECT_OK(expr)                                 \
  do {                                                      \
    const ::svc::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

/// Unwraps a Result<T>, failing the test on error.
#define SVC_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                \
  SVC_ASSERT_OK_AND_ASSIGN_IMPL_(                           \
      SVC_TEST_CONCAT_(_svc_test_result, __LINE__), lhs, rexpr)
#define SVC_TEST_CONCAT_INNER_(a, b) a##b
#define SVC_TEST_CONCAT_(a, b) SVC_TEST_CONCAT_INNER_(a, b)
#define SVC_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, rexpr)     \
  auto tmp = (rexpr);                                       \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();         \
  lhs = std::move(tmp).value()

/// The paper's running example: Log(sessionId, videoId) and
/// Video(videoId, ownerId, duration).
inline Database MakeLogVideoDb() {
  Database db;
  Table log(Schema({{"", "sessionId", ValueType::kInt},
                    {"", "videoId", ValueType::kInt}}));
  EXPECT_TRUE(log.SetPrimaryKey({"sessionId"}).ok());
  // 10 sessions across 4 videos (video 4 unseen yet).
  const int64_t visits[10] = {1, 1, 1, 2, 2, 3, 3, 3, 3, 2};
  for (int64_t s = 0; s < 10; ++s) {
    EXPECT_TRUE(
        log.Insert({Value::Int(s), Value::Int(visits[s])}).ok());
  }
  Table video(Schema({{"", "videoId", ValueType::kInt},
                      {"", "ownerId", ValueType::kInt},
                      {"", "duration", ValueType::kDouble}}));
  EXPECT_TRUE(video.SetPrimaryKey({"videoId"}).ok());
  for (int64_t v = 1; v <= 5; ++v) {
    EXPECT_TRUE(video
                    .Insert({Value::Int(v), Value::Int(100 + v % 3),
                             Value::Double(0.5 * static_cast<double>(v))})
                    .ok());
  }
  EXPECT_TRUE(db.CreateTable("Log", std::move(log)).ok());
  EXPECT_TRUE(db.CreateTable("Video", std::move(video)).ok());
  return db;
}

/// Sorts a table's rows by their full encoded content (for order-agnostic
/// comparison).
inline std::vector<std::string> EncodedRows(const Table& t) {
  std::vector<size_t> all(t.schema().NumColumns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<std::string> out;
  out.reserve(t.NumRows());
  for (const auto& r : t.rows()) out.push_back(EncodeRowKey(r, all));
  std::sort(out.begin(), out.end());
  return out;
}

/// Asserts two tables contain the same rows, matching by primary key and
/// comparing numeric values with a relative tolerance (incremental
/// maintenance of doubles is not bitwise identical to recomputation).
inline void ExpectTablesEquivalent(const Table& actual, const Table& expected,
                                   double tol = 1e-9) {
  ASSERT_EQ(actual.schema().NumColumns(), expected.schema().NumColumns());
  ASSERT_TRUE(actual.HasPrimaryKey());
  ASSERT_TRUE(expected.HasPrimaryKey());
  EXPECT_EQ(actual.NumRows(), expected.NumRows());
  size_t checked = 0;
  for (size_t i = 0; i < expected.NumRows(); ++i) {
    auto found = actual.FindByEncodedKey(expected.EncodedKey(i));
    ASSERT_TRUE(found.ok()) << "missing key for expected row " << i << ": "
                            << expected.ToString(5);
    const Row& a = actual.row(*found);
    const Row& e = expected.row(i);
    for (size_t c = 0; c < e.size(); ++c) {
      if (a[c].IsNumeric() && e[c].IsNumeric()) {
        const double av = a[c].ToDouble(), ev = e[c].ToDouble();
        EXPECT_NEAR(av, ev, tol * std::max({1.0, std::fabs(av),
                                            std::fabs(ev)}))
            << "column " << expected.schema().column(c).FullName()
            << " of key row " << i;
      } else {
        EXPECT_TRUE(a[c] == e[c])
            << "column " << expected.schema().column(c).FullName() << ": "
            << a[c].ToString() << " vs " << e[c].ToString();
      }
    }
    ++checked;
  }
  EXPECT_EQ(checked, expected.NumRows());
}

}  // namespace testing_util
}  // namespace svc

#endif  // SVC_TESTS_TEST_UTIL_H_
