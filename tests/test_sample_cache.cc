// Tests for the cleaned-sample cache (core/sample_cache.h) and incremental
// sample maintenance (AdvanceCleanedSamples): the serving hot path must be
// *bit-identical* to the cold cleaning pipeline — same sample rows in the
// same order — across ingest rounds, view shapes, and thread counts, with
// the cache's counters proving which path (hit / incremental advance /
// full re-clean) actually served each query. A SharedEngine test races
// concurrent snapshot readers on one cache entry: exactly one cleaning run
// may happen (the TSan job exercises the locking).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/shared_engine.h"
#include "core/svc.h"
#include "sql/planner.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

Schema FactSchema() {
  return Schema({{"", "id", ValueType::kInt},
                 {"", "g", ValueType::kInt},
                 {"", "v", ValueType::kDouble}});
}

/// An engine over fact table F (and dimension D), with one view `V`
/// defined by `view_sql`.
SvcEngine MakeFactEngine(const std::string& view_sql, uint64_t seed,
                         int64_t rows = 80) {
  Database db;
  Table fact(FactSchema());
  EXPECT_TRUE(fact.SetPrimaryKey({"id"}).ok());
  Rng rng(seed);
  for (int64_t id = 0; id < rows; ++id) {
    EXPECT_TRUE(fact.Insert({Value::Int(id),
                             Value::Int(rng.UniformInt(1, 5)),
                             Value::Double(rng.UniformInt(0, 1000) / 16.0)})
                    .ok());
  }
  EXPECT_TRUE(db.CreateTable("F", std::move(fact)).ok());
  Table dim(Schema({{"", "g", ValueType::kInt},
                    {"", "label", ValueType::kInt}}));
  EXPECT_TRUE(dim.SetPrimaryKey({"g"}).ok());
  for (int64_t g = 1; g <= 5; ++g) {
    EXPECT_TRUE(dim.Insert({Value::Int(g), Value::Int(100 + g)}).ok());
  }
  EXPECT_TRUE(db.CreateTable("D", std::move(dim)).ok());
  SvcEngine engine(std::move(db));
  PlanPtr def = SqlToPlan(view_sql, *engine.db()).value();
  EXPECT_TRUE(engine.CreateView("V", std::move(def)).ok());
  return engine;
}

void IngestRandomInserts(SvcEngine* engine, Rng* rng, int64_t* next_id,
                         int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    SVC_ASSERT_OK(engine->InsertRecord(
        "F", {Value::Int((*next_id)++), Value::Int(rng->UniformInt(1, 5)),
              Value::Double(rng->UniformInt(0, 1000) / 16.0)}));
  }
}

/// Asserts two tables are bit-identical: same schema width, same rows in
/// the same order, values compared exactly.
void ExpectTablesIdentical(const Table& got, const Table& want) {
  ASSERT_EQ(got.schema().NumColumns(), want.schema().NumColumns());
  ASSERT_EQ(got.NumRows(), want.NumRows());
  for (size_t i = 0; i < got.NumRows(); ++i) {
    const Row& a = got.row(i);
    const Row& b = want.row(i);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_TRUE(a[c] == b[c])
          << "row " << i << " col " << c << ": " << a[c].ToString()
          << " vs " << b[c].ToString();
    }
  }
}

uint64_t TotalAdvances(const SvcEngine& engine) {
  uint64_t n = 0;
  for (const auto& [view, s] : engine.CacheStats()) {
    n += s.incremental_advances;
  }
  return n;
}

const char* const kViews[] = {
    // Single-table aggregate (the paper's V11 shape).
    "SELECT g, COUNT(1) AS c, SUM(v) AS sv FROM F GROUP BY g",
    // Aggregate over a selection (σ below γ).
    "SELECT g, SUM(v) AS sv FROM F WHERE v > 20.0 GROUP BY g",
    // Aggregate over a fact-dimension join (V12 shape).
    "SELECT F.g, COUNT(1) AS c, SUM(F.v) AS sv "
    "FROM F, D WHERE F.g = D.g GROUP BY F.g",
    // avg() exercises the hidden sum/cnt merge columns.
    "SELECT g, AVG(v) AS av FROM F GROUP BY g",
};

// The cached sample after each ingest round must equal a cold re-clean of
// the same engine state bit-for-bit (values and row order), and the
// incremental path must actually serve some of those rounds (insert-only
// single-relation ingest is its supported shape).
TEST(SampleCacheTest, AdvancedSamplesBitIdenticalToColdClean) {
  for (const char* view_sql : kViews) {
    for (uint64_t seed : {7u, 19u, 101u}) {
      SCOPED_TRACE(std::string("view=\"") + view_sql +
                   "\" seed=" + std::to_string(seed));
      SvcEngine engine = MakeFactEngine(view_sql, seed);
      Rng rng(seed ^ 0xadce11);
      int64_t next_id = 1000000;
      for (int round = 0; round < 4; ++round) {
        SCOPED_TRACE("round=" + std::to_string(round));
        IngestRandomInserts(&engine, &rng, &next_id,
                            rng.UniformInt(1, 15));
        for (double ratio : {0.3, 0.7}) {
          CleanOptions opts{ratio, HashFamily::kFnv1a};
          SVC_ASSERT_OK_AND_ASSIGN(
              std::shared_ptr<const CorrespondingSamples> cached,
              engine.CleanSampleCached("V", opts));
          SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples cold,
                                   engine.CleanSample("V", opts));
          ExpectTablesIdentical(cached->fresh, cold.fresh);
          ExpectTablesIdentical(cached->stale, cold.stale);
        }
      }
      // Rounds 1..3 must have been served by the incremental path (round
      // 0 populates the entries with a full clean).
      EXPECT_GE(TotalAdvances(engine), 3u)
          << "the advance gates rejected a supported shape";

      // After maintenance the view table changes: entries must rebuild,
      // and the next ingest round must advance again.
      SVC_ASSERT_OK(engine.MaintainAll());
      IngestRandomInserts(&engine, &rng, &next_id, 5);
      CleanOptions opts{0.3, HashFamily::kFnv1a};
      SVC_ASSERT_OK_AND_ASSIGN(
          std::shared_ptr<const CorrespondingSamples> cached,
          engine.CleanSampleCached("V", opts));
      SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples cold,
                               engine.CleanSample("V", opts));
      ExpectTablesIdentical(cached->fresh, cold.fresh);
    }
  }
}

// Deletes are outside the advance gates: the cache must fall back to a
// full re-clean and still match the cold pipeline exactly.
TEST(SampleCacheTest, DeletesFallBackToFullClean) {
  SvcEngine engine = MakeFactEngine(kViews[0], 5);
  Rng rng(5);
  int64_t next_id = 1000000;
  IngestRandomInserts(&engine, &rng, &next_id, 10);
  CleanOptions opts{0.5, HashFamily::kFnv1a};
  SVC_ASSERT_OK(engine.CleanSampleCached("V", opts).status());
  const uint64_t cleans_before = engine.CacheStats().at("V").full_cleans;

  SVC_ASSERT_OK_AND_ASSIGN(const Table* fact, engine.db()->GetTable("F"));
  SVC_ASSERT_OK(engine.DeleteRecord("F", fact->row(3)));
  SVC_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const CorrespondingSamples> cached,
      engine.CleanSampleCached("V", opts));
  EXPECT_EQ(engine.CacheStats().at("V").full_cleans, cleans_before + 1);
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples cold,
                           engine.CleanSample("V", opts));
  ExpectTablesIdentical(cached->fresh, cold.fresh);
}

// An unchanged engine serves repeated queries from the same cached object.
TEST(SampleCacheTest, RepeatedQueriesHitOneEntry) {
  SvcEngine engine = MakeFactEngine(kViews[0], 9);
  Rng rng(9);
  int64_t next_id = 1000000;
  IngestRandomInserts(&engine, &rng, &next_id, 12);
  CleanOptions opts{0.5, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const CorrespondingSamples> first,
      engine.CleanSampleCached("V", opts));
  SVC_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const CorrespondingSamples> second,
      engine.CleanSampleCached("V", opts));
  EXPECT_EQ(first.get(), second.get()) << "second query re-cleaned";
  const ViewCacheStats stats = engine.CacheStats().at("V");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // Query/QueryGrouped answers are identical with the cache off.
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("sv"));
  SvcQueryOptions qopts;
  qopts.ratio = 0.5;
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer warm, engine.Query("V", q, qopts));
  engine.set_sample_cache_enabled(false);
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer cold, engine.Query("V", q, qopts));
  EXPECT_EQ(warm.estimate.value, cold.estimate.value);
  EXPECT_EQ(warm.estimate.ci_low, cold.estimate.ci_low);
  EXPECT_EQ(warm.estimate.ci_high, cold.estimate.ci_high);
  EXPECT_EQ(warm.estimate.sample_rows, cold.estimate.sample_rows);
}

// Deltas to relations a view does not read must not invalidate its entry:
// the advance recognizes the no-op and reuses the samples object.
TEST(SampleCacheTest, ForeignRelationDeltasReuseEntry) {
  SvcEngine engine(MakeLogVideoDb());
  PlanPtr def = SqlToPlan(
      "SELECT videoId, COUNT(1) AS c FROM Log GROUP BY videoId",
      *engine.db()).value();
  SVC_ASSERT_OK(engine.CreateView("V", std::move(def)));
  SVC_ASSERT_OK(engine.InsertRecord(
      "Log", {Value::Int(500), Value::Int(1)}));
  CleanOptions opts{0.8, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const CorrespondingSamples> first,
      engine.CleanSampleCached("V", opts));
  // Video is not read by V; ingesting into it bumps the delta version.
  SVC_ASSERT_OK(engine.InsertRecord(
      "Video", {Value::Int(50), Value::Int(101), Value::Double(1.0)}));
  SVC_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const CorrespondingSamples> second,
      engine.CleanSampleCached("V", opts));
  EXPECT_EQ(first.get(), second.get())
      << "foreign-relation delta forced a re-clean";
  EXPECT_EQ(engine.CacheStats().at("V").incremental_advances, 1u);
}

// An engine fork (the SharedEngine commit path) carries the cache entries:
// after an insert-only ingest on the fork, its first query advances the
// carried sample instead of re-cleaning from scratch.
TEST(SampleCacheTest, ForkCarriesEntriesAndAdvances) {
  SvcEngine engine = MakeFactEngine(kViews[0], 21);
  Rng rng(21);
  int64_t next_id = 1000000;
  IngestRandomInserts(&engine, &rng, &next_id, 8);
  CleanOptions opts{0.5, HashFamily::kFnv1a};
  SVC_ASSERT_OK(engine.CleanSampleCached("V", opts).status());

  SvcEngine fork(engine);
  IngestRandomInserts(&fork, &rng, &next_id, 6);
  SVC_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const CorrespondingSamples> cached,
      fork.CleanSampleCached("V", opts));
  EXPECT_EQ(fork.CacheStats().at("V").incremental_advances, 1u);
  EXPECT_EQ(fork.CacheStats().at("V").full_cleans, 1u);  // carried counter
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples cold,
                           fork.CleanSample("V", opts));
  ExpectTablesIdentical(cached->fresh, cold.fresh);
  // The parent's cache is untouched by the fork's activity.
  EXPECT_EQ(engine.CacheStats().at("V").incremental_advances, 0u);
}

// Concurrent readers of one published snapshot racing on the same cache
// key: exactly one cleaning run happens, every reader gets the same
// answer. This is the test the TSan job leans on.
TEST(SampleCacheTest, ConcurrentSnapshotReadersPopulateOnce) {
  SvcEngine engine = MakeFactEngine(kViews[0], 33, /*rows=*/400);
  Rng rng(33);
  int64_t next_id = 1000000;
  IngestRandomInserts(&engine, &rng, &next_id, 40);
  auto shared = std::make_shared<SharedEngine>(std::move(engine));

  constexpr int kReaders = 8;
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("sv"));
  SvcQueryOptions qopts;
  qopts.ratio = 0.4;
  std::vector<SvcAnswer> answers(kReaders);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  SnapshotPtr snap = shared->Snapshot();
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      auto r = snap->engine.Query("V", q, qopts);
      if (!r.ok()) {
        ++failures;
        return;
      }
      answers[t] = std::move(r).value();
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  const ViewCacheStats stats = snap->engine.CacheStats().at("V");
  EXPECT_EQ(stats.misses, 1u) << "readers raced into multiple cleaning runs";
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kReaders - 1));
  for (int t = 1; t < kReaders; ++t) {
    EXPECT_EQ(answers[t].estimate.value, answers[0].estimate.value);
    EXPECT_EQ(answers[t].estimate.ci_low, answers[0].estimate.ci_low);
    EXPECT_EQ(answers[t].estimate.ci_high, answers[0].estimate.ci_high);
    EXPECT_EQ(answers[t].estimate.sample_rows,
              answers[0].estimate.sample_rows);
  }
}

}  // namespace
}  // namespace svc
