// Determinism of the parallel partitioned executor and bootstrap: every
// operator must produce bit-identical output — row order included — for
// num_threads ∈ {1, 2, 8}. The inputs are sized well past the chunking
// threshold so the parallel paths genuinely engage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/bootstrap.h"
#include "relational/executor.h"
#include "tests/test_util.h"

namespace svc {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// Rows encoded in table order (NOT sorted): equality means bitwise equal
/// contents in the same order.
std::vector<std::string> OrderedEncodedRows(const Table& t) {
  std::vector<size_t> all(t.schema().NumColumns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<std::string> out;
  out.reserve(t.NumRows());
  for (const auto& r : t.rows()) out.push_back(EncodeRowKey(r, all));
  return out;
}

/// A fact ⋈ dim shape big enough that DeterministicChunks yields several
/// chunks (20 k rows -> 4 chunks at the 4096-row grain). The dim side is
/// 10 k rows — past the threshold itself — so joins that build on it take
/// the radix-sharded parallel build, not just the parallel probe.
/// Includes NULL join keys, string group keys (exercising the flat-map
/// arena), and fractional doubles (exercising reduction-order
/// sensitivity).
Database MakeParallelDb() {
  Database db;
  Table fact(Schema({{"", "id", ValueType::kInt},
                     {"", "key", ValueType::kInt},
                     {"", "tag", ValueType::kString},
                     {"", "val", ValueType::kDouble}}));
  EXPECT_TRUE(fact.SetPrimaryKey({"id"}).ok());
  Table dim(Schema({{"", "key", ValueType::kInt},
                    {"", "attr", ValueType::kDouble}}));
  EXPECT_TRUE(dim.SetPrimaryKey({"key"}).ok());
  Rng rng(77);
  const int64_t kDims = 10000;
  for (int64_t k = 0; k < kDims; ++k) {
    EXPECT_TRUE(dim.Insert({Value::Int(k), Value::Double(rng.NextDouble())})
                    .ok());
  }
  for (int64_t i = 0; i < 20000; ++i) {
    // ~2% NULL join keys: they must be skipped identically everywhere.
    Value key = rng.NextDouble() < 0.02
                    ? Value::Null()
                    : Value::Int(rng.UniformInt(0, kDims - 1));
    EXPECT_TRUE(fact.Insert({Value::Int(i), std::move(key),
                             Value::String("t" + std::to_string(
                                                     rng.UniformInt(0, 30))),
                             Value::Double(rng.Uniform(0, 100))})
                    .ok());
  }
  db.PutTable("fact", std::move(fact));
  db.PutTable("dim", std::move(dim));
  return db;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest() : db_(MakeParallelDb()) {}

  /// Runs `plan` at every thread count and asserts all results are
  /// bitwise identical (content and row order) to the sequential one.
  void ExpectIdenticalAcrossThreadCounts(const PlanPtr& plan) {
    std::vector<std::string> reference;
    for (int threads : kThreadCounts) {
      auto r = ExecutePlan(*plan, db_, ExecOptions{threads});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      std::vector<std::string> rows = OrderedEncodedRows(*r);
      if (threads == 1) {
        reference = std::move(rows);
        ASSERT_FALSE(reference.empty());
        continue;
      }
      EXPECT_EQ(rows, reference) << "num_threads=" << threads;
    }
  }

  Database db_;
};

TEST_F(ParallelExecTest, SelectIsDeterministic) {
  ExpectIdenticalAcrossThreadCounts(PlanNode::Select(
      PlanNode::Scan("fact"),
      Expr::Gt(Expr::Col("val"), Expr::LitDouble(35))));
}

TEST_F(ParallelExecTest, ProjectIsDeterministic) {
  ExpectIdenticalAcrossThreadCounts(PlanNode::Project(
      PlanNode::Scan("fact"),
      {{"id", Expr::Col("id"), ""},
       {"scaled", Expr::Mul(Expr::Col("val"), Expr::LitDouble(1.5)), ""}}));
}

TEST_F(ParallelExecTest, InnerJoinIsDeterministic) {
  ExpectIdenticalAcrossThreadCounts(PlanNode::Join(
      PlanNode::Scan("fact", "f"), PlanNode::Scan("dim", "d"),
      JoinType::kInner, {{"f.key", "d.key"}}, nullptr, true));
}

TEST_F(ParallelExecTest, InnerJoinWithResidualIsDeterministic) {
  ExpectIdenticalAcrossThreadCounts(PlanNode::Join(
      PlanNode::Scan("fact", "f"), PlanNode::Scan("dim", "d"),
      JoinType::kInner, {{"f.key", "d.key"}},
      Expr::Gt(Expr::Col("d.attr"), Expr::LitDouble(0.3)), true));
}

TEST_F(ParallelExecTest, AggregateIsDeterministic) {
  // Every accumulator family at once: float-sum order, median's value
  // buffer, count-distinct's key set, min/max, int counts.
  ExpectIdenticalAcrossThreadCounts(PlanNode::Aggregate(
      PlanNode::Scan("fact"), {"tag"},
      {{AggFunc::kSum, Expr::Col("val"), "s"},
       {AggFunc::kAvg, Expr::Col("val"), "a"},
       {AggFunc::kCountStar, nullptr, "c"},
       {AggFunc::kMedian, Expr::Col("val"), "med"},
       {AggFunc::kCountDistinct, Expr::Col("key"), "cd"},
       {AggFunc::kMin, Expr::Col("val"), "lo"},
       {AggFunc::kMax, Expr::Col("val"), "hi"}}));
}

TEST_F(ParallelExecTest, AggregateWithExprInputIsDeterministic) {
  // A non-column aggregate input forces the scratch-row path.
  ExpectIdenticalAcrossThreadCounts(PlanNode::Aggregate(
      PlanNode::Scan("fact"), {"key"},
      {{AggFunc::kSum, Expr::Mul(Expr::Col("val"), Expr::LitDouble(2.0)),
        "s2"}}));
}

TEST_F(ParallelExecTest, FusedJoinAggregateIsDeterministic) {
  PlanPtr join = PlanNode::Join(PlanNode::Scan("fact", "f"),
                                PlanNode::Scan("dim", "d"), JoinType::kInner,
                                {{"f.key", "d.key"}}, nullptr, true);
  ExpectIdenticalAcrossThreadCounts(PlanNode::Aggregate(
      std::move(join), {"f.tag"},
      {{AggFunc::kSum, Expr::Col("f.val"), "s"},
       {AggFunc::kAvg, Expr::Col("d.attr"), "a"},
       {AggFunc::kCountStar, nullptr, "c"}}));
}

TEST_F(ParallelExecTest, FusedJoinAggregateWithResidualIsDeterministic) {
  PlanPtr join = PlanNode::Join(
      PlanNode::Scan("fact", "f"), PlanNode::Scan("dim", "d"),
      JoinType::kInner, {{"f.key", "d.key"}},
      Expr::Lt(Expr::Col("d.attr"), Expr::LitDouble(0.7)), true);
  ExpectIdenticalAcrossThreadCounts(PlanNode::Aggregate(
      std::move(join), {"f.key"},
      {{AggFunc::kSum, Expr::Col("f.val"), "s"},
       {AggFunc::kCountStar, nullptr, "c"}}));
}

TEST_F(ParallelExecTest, HashFilterIsDeterministic) {
  // The η sampling operator: membership is per-row, but the surviving
  // row order must also match.
  ExpectIdenticalAcrossThreadCounts(PlanNode::HashFilter(
      PlanNode::Scan("fact"), {"id"}, 0.25, HashFamily::kFnv1a));
}

TEST_F(ParallelExecTest, SelectOverOwnedInputIsDeterministic) {
  // Project materializes owned rows, so the select above it takes the
  // concurrent row-move branch (chunks moving disjoint ranges out of
  // owned_rows()) rather than the borrowed-copy branch.
  PlanPtr owned = PlanNode::Project(
      PlanNode::Scan("fact"),
      {{"id", Expr::Col("id"), ""},
       {"val", Expr::Col("val"), ""},
       {"tag", Expr::Col("tag"), ""}});
  ExpectIdenticalAcrossThreadCounts(PlanNode::Select(
      std::move(owned), Expr::Lt(Expr::Col("val"), Expr::LitDouble(60))));
}

TEST_F(ParallelExecTest, HashFilterOverOwnedInputIsDeterministic) {
  // Same owned-input row-move branch, for the η operator.
  PlanPtr owned = PlanNode::Project(
      PlanNode::Scan("fact"),
      {{"id", Expr::Col("id"), ""}, {"val", Expr::Col("val"), ""}});
  ExpectIdenticalAcrossThreadCounts(PlanNode::HashFilter(
      std::move(owned), {"id"}, 0.5, HashFamily::kFnv1a));
}

TEST_F(ParallelExecTest, GlobalAggregateMatchesAcrossThreadCounts) {
  // No group columns: stays on the sequential path at any thread count,
  // but must still produce the same single row.
  ExpectIdenticalAcrossThreadCounts(PlanNode::Aggregate(
      PlanNode::Scan("fact"), {},
      {{AggFunc::kSum, Expr::Col("val"), "s"},
       {AggFunc::kCountStar, nullptr, "c"}}));
}

TEST(ParallelBootstrapTest, IntervalIsIdenticalAcrossThreadCounts) {
  // The §5.2.5 bootstrap with per-replicate RNG streams: the interval is
  // a pure function of (data, seed, iterations) at any thread count.
  std::vector<double> values;
  Rng data_rng(123);
  for (int i = 0; i < 500; ++i) values.push_back(data_rng.Gaussian());
  auto stat = [&values](Rng* rng) {
    std::vector<double> res;
    res.reserve(values.size());
    for (size_t i : ResampleIndices(values.size(), rng)) {
      res.push_back(values[i]);
    }
    return MedianInPlace(&res);
  };
  const auto [lo1, hi1] =
      BootstrapPercentileInterval(stat, 200, 0xb00ce, 0.95, /*num_threads=*/1);
  EXPECT_LT(lo1, hi1);
  for (int threads : {2, 8}) {
    const auto [lo, hi] =
        BootstrapPercentileInterval(stat, 200, 0xb00ce, 0.95, threads);
    EXPECT_EQ(lo, lo1) << "num_threads=" << threads;
    EXPECT_EQ(hi, hi1) << "num_threads=" << threads;
  }
}

TEST(ParallelBootstrapTest, ReplicatesAreSeedDeterministic) {
  // Same seed -> same interval; different seed -> (almost surely) a
  // different one. Guards the seed ^ replicate_id derivation.
  std::vector<double> values;
  Rng data_rng(9);
  for (int i = 0; i < 200; ++i) values.push_back(data_rng.NextDouble());
  auto stat = [&values](Rng* rng) {
    double s = 0;
    for (size_t i : ResampleIndices(values.size(), rng)) s += values[i];
    return s / static_cast<double>(values.size());
  };
  const auto a = BootstrapPercentileInterval(stat, 100, 42, 0.95, 4);
  const auto b = BootstrapPercentileInterval(stat, 100, 42, 0.95, 4);
  const auto c = BootstrapPercentileInterval(stat, 100, 43, 0.95, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace svc
