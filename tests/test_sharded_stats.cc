// Regression for the sharded SHOW STATS over-count: cache counters and the
// delta version must be logical, per-statement quantities — one
// scatter-gather query is one hit/miss/clean, and the delta version is the
// coordinator's publish counter — so the whole SHOW STATS (and
// SHOW MAINTENANCE) relation comes back bit-identical at every shard
// count. Before the fix, counters and the version summed across shards, so
// the same statement stream reported 4x the activity at --shards 4.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace svc {
namespace {

constexpr int kShardCounts[] = {1, 2, 4};

SqlResult MustRun(SqlSession* session, const std::string& sql) {
  auto r = session->Execute(sql);
  if (!r.ok()) {
    ADD_FAILURE() << r.status().ToString() << "\nSQL: " << sql;
    return SqlResult();
  }
  return std::move(r).value();
}

/// Asserts two relations are identical cell-for-cell (all columns here are
/// strings/ints/doubles produced deterministically).
void ExpectSameRows(const SqlResult& got, const SqlResult& want,
                    const std::string& what) {
  ASSERT_EQ(got.rows.schema().NumColumns(), want.rows.schema().NumColumns())
      << what;
  ASSERT_EQ(got.rows.NumRows(), want.rows.NumRows()) << what;
  for (size_t i = 0; i < want.rows.NumRows(); ++i) {
    for (size_t c = 0; c < want.rows.schema().NumColumns(); ++c) {
      EXPECT_TRUE(got.rows.row(i)[c] == want.rows.row(i)[c])
          << what << " row " << i << " col "
          << want.rows.schema().column(c).name << ": "
          << got.rows.row(i)[c].ToString() << " vs "
          << want.rows.row(i)[c].ToString();
    }
  }
}

/// The statement stream every shard count replays: DDL, committed load,
/// view, pending deltas, serving queries (these move the cache counters),
/// a refresh, and more queries.
const char* kScript[] = {
    "CREATE TABLE F (id INT, g INT, v DOUBLE, PRIMARY KEY (id))",
    "INSERT INTO F VALUES (0, 1, 1.5), (1, 2, 2.5), (2, 1, 3.5), "
    "(3, 3, 4.5), (4, 2, 5.5), (5, 1, 6.5), (6, 3, 7.5), (7, 2, 8.5)",
    "REFRESH ALL",
    "CREATE MATERIALIZED VIEW V AS "
    "SELECT g, COUNT(1) AS c, SUM(v) AS sv FROM F GROUP BY g",
    "INSERT INTO F VALUES (8, 1, 9.5), (9, 3, 10.5), (10, 2, 11.5)",
    "SELECT COUNT(1) AS x FROM V WITH SVC(ratio=0.5, mode=corr)",
    "SELECT SUM(sv) AS x FROM V WITH SVC(ratio=0.5, mode=corr)",
    "SELECT SUM(sv) AS x FROM V WITH SVC(ratio=0.5, mode=corr)",
    "INSERT INTO F VALUES (11, 1, 12.5)",
    "SELECT COUNT(1) AS x FROM V WITH SVC(ratio=0.5, mode=aqp)",
    "SET MAINTENANCE POLICY (mode=auto, budget=0.25, sla_ms=2000)",
    "REFRESH ALL",
    "SELECT COUNT(1) AS x FROM V WITH SVC(ratio=0.5, mode=corr)",
};

TEST(ShardedStatsTest, ShowStatsIsShardCountInvariant) {
  std::vector<SqlResult> stats;
  std::vector<SqlResult> maintenance;
  for (int shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    SqlSession session(EngineHandle::Sharded(
        std::make_shared<ShardedEngine>(Database(), shards)));
    for (const char* sql : kScript) MustRun(&session, sql);
    stats.push_back(MustRun(&session, "SHOW STATS"));
    maintenance.push_back(MustRun(&session, "SHOW MAINTENANCE"));
  }
  for (size_t i = 1; i < stats.size(); ++i) {
    SCOPED_TRACE("shards=" + std::to_string(kShardCounts[i]) + " vs shards=1");
    ExpectSameRows(stats[i], stats[0], "SHOW STATS");
    ExpectSameRows(maintenance[i], maintenance[0], "SHOW MAINTENANCE");
  }

  // Spot-check the logical meaning at shards=1 so invariance can't be
  // satisfied by everything being zero: three cached-serving queries ran
  // before the refresh against the same pending state — the first cleans,
  // the later ones hit or advance — and the delta version counts
  // coordinator publishes, not per-shard queue mutations.
  const SqlResult& s = stats[0];
  ASSERT_EQ(s.rows.NumRows(), 1u);
  const int64_t hits = s.rows.row(0)[1].AsInt();
  const int64_t misses = s.rows.row(0)[2].AsInt();
  EXPECT_GT(hits + misses, 0);
  EXPECT_EQ(s.rows.row(0)[5].AsInt(), 0);  // refreshed: nothing pending
}

TEST(ShardedStatsTest, PendingRowsCountLogicalRowsOnce) {
  // Partitioned base rows land on different shards; the view's
  // pending_rows column must still report the logical batch size at every
  // shard count (summing per-shard queues double-counts nothing, but
  // replicated relations would repeat per shard — this pins the contract).
  for (int shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    SqlSession session(EngineHandle::Sharded(
        std::make_shared<ShardedEngine>(Database(), shards)));
    MustRun(&session,
            "CREATE TABLE F (id INT, v DOUBLE, PRIMARY KEY (id))");
    MustRun(&session, "REFRESH ALL");
    MustRun(&session,
            "CREATE MATERIALIZED VIEW V AS "
            "SELECT id, SUM(v) AS sv FROM F GROUP BY id");
    MustRun(&session,
            "INSERT INTO F VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0), "
            "(5, 5.0)");
    SqlResult stats = MustRun(&session, "SHOW STATS");
    ASSERT_EQ(stats.rows.NumRows(), 1u);
    EXPECT_EQ(stats.rows.row(0)[5].AsInt(), 5);  // pending_rows, once each
  }
}

}  // namespace
}  // namespace svc
