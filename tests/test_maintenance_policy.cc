// Maintenance policy (core/maintenance_policy.h) and the background
// scheduler (SharedEngine/ShardedEngine StartMaintenance): scoring formula
// units, the policy-vs-manual differential — an engine whose maintenance is
// driven by deterministic MaintenanceTick calls must answer every query
// bit-identically to a replica whose REFRESH ALL statements were issued by
// hand at the same logical points, across shard counts {1, 2, 4} and thread
// counts {1, 4} — scheduler thread lifecycle, and the kill-and-recover
// check that a policy-triggered refresh is never half-durable.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/maintenance_policy.h"
#include "sql/parser.h"
#include "storage/ops.h"
#include "storage/serde.h"
#include "core/sharded_engine.h"
#include "core/shared_engine.h"
#include "core/svc.h"
#include "sql/session.h"
#include "storage/durable_engine.h"
#include "storage/fault.h"
#include "tests/test_util.h"

namespace svc {
namespace {

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

SqlResult MustRun(SqlSession* session, const std::string& sql) {
  auto r = session->Execute(sql);
  if (!r.ok()) {
    ADD_FAILURE() << r.status().ToString() << "\nSQL: " << sql;
    return SqlResult();
  }
  return std::move(r).value();
}

void ExpectResultsBitIdentical(const SqlResult& got, const SqlResult& want) {
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.mode_used, want.mode_used);
  ASSERT_EQ(got.rows.schema().NumColumns(), want.rows.schema().NumColumns());
  ASSERT_EQ(got.rows.NumRows(), want.rows.NumRows());
  for (size_t i = 0; i < want.rows.NumRows(); ++i) {
    for (size_t c = 0; c < want.rows.schema().NumColumns(); ++c) {
      const Value& g = got.rows.row(i)[c];
      const Value& w = want.rows.row(i)[c];
      ASSERT_EQ(g.type(), w.type()) << "row " << i << " col " << c;
      if (w.type() == ValueType::kDouble) {
        EXPECT_EQ(BitsOf(g.AsDouble()), BitsOf(w.AsDouble()))
            << "row " << i << " col " << c << ": " << g.ToString() << " vs "
            << w.ToString();
      } else {
        EXPECT_TRUE(g == w) << "row " << i << " col " << c << ": "
                            << g.ToString() << " vs " << w.ToString();
      }
    }
  }
}

// ---- Scoring formula units -------------------------------------------------

TEST(MaintenancePolicyTest, FreshViewScoresZero) {
  MaintenancePolicyConfig cfg;
  // elapsed_ms is huge, but a view with nothing pending is not stale: the
  // SLA bounds staleness age, not time-since-refresh in the abstract.
  ViewMaintenanceScore s = ScoreOneView("v", 0, 100, nullptr, cfg, 1u << 20);
  EXPECT_EQ(s.score, 0.0);
  EXPECT_EQ(s.action, MaintenanceAction::kNone);
}

TEST(MaintenancePolicyTest, StalenessAndSlaTermsAdd) {
  MaintenancePolicyConfig cfg;
  cfg.sla_ms = 5000;
  ViewMaintenanceScore s = ScoreOneView("v", 5, 5, nullptr, cfg, 2500);
  EXPECT_EQ(s.staleness, 0.5);
  EXPECT_EQ(s.error, 0.0);  // no probe
  EXPECT_EQ(s.sla, 0.5);
  EXPECT_EQ(s.score, 1.0);
  EXPECT_EQ(s.action, MaintenanceAction::kRefresh);
  ViewMaintenanceScore warm = ScoreOneView("v", 5, 5, nullptr, cfg, 2000);
  EXPECT_EQ(warm.action, MaintenanceAction::kWarm);
}

TEST(MaintenancePolicyTest, ErrorTermIsRelativeHalfWidthOverBudget) {
  MaintenancePolicyConfig cfg;
  cfg.budget = 0.05;
  Estimate probe;
  probe.value = 100.0;
  probe.ci_low = 90.0;
  probe.ci_high = 110.0;
  probe.has_ci = true;
  // half-width 10 on |value| 100 → relative 0.1 → 2x the 0.05 budget.
  ViewMaintenanceScore s = ScoreOneView("v", 1, 999, &probe, cfg, 0);
  EXPECT_DOUBLE_EQ(s.error, 2.0);
  EXPECT_EQ(s.action, MaintenanceAction::kRefresh);
  // Without a CI the probe contributes nothing (exact answers have no
  // error budget to spend).
  probe.has_ci = false;
  EXPECT_EQ(ScoreOneView("v", 1, 999, &probe, cfg, 0).error, 0.0);
}

TEST(MaintenancePolicyTest, DescribeAndNames) {
  MaintenancePolicyConfig cfg;
  cfg.mode = MaintenancePolicyConfig::Mode::kAuto;
  cfg.budget = 0.05;
  cfg.sla_ms = 1000;
  EXPECT_EQ(DescribeMaintenancePolicy(cfg), "mode=auto budget=0.05 sla_ms=1000");
  EXPECT_STREQ(MaintenanceActionName(MaintenanceAction::kRefresh), "refresh");
  EXPECT_STREQ(MaintenanceModeName(MaintenancePolicyConfig::Mode::kOff), "off");
}

TEST(MaintenancePolicyTest, PolicyIsEngineStateAndForksCopyIt) {
  SvcEngine eng{Database()};
  MaintenancePolicyConfig cfg;
  cfg.mode = MaintenancePolicyConfig::Mode::kAuto;
  cfg.budget = 0.02;
  cfg.tick_ms = 7;
  eng.set_maintenance_policy(cfg);
  SvcEngine fork(eng);
  EXPECT_TRUE(fork.maintenance_policy() == cfg);
  EXPECT_TRUE(SvcEngine{Database()}.maintenance_policy() !=  cfg);
}

// ---- The policy-vs-manual differential -------------------------------------

constexpr int kShardCounts[] = {1, 2, 4};

/// One engine configuration under test: the unsharded SharedEngine or a
/// ShardedEngine at some shard count, plus a SQL session over it.
struct Lane {
  std::string name;
  std::shared_ptr<SharedEngine> shared;    // null when sharded
  std::shared_ptr<ShardedEngine> sharded;  // null when shared
  std::unique_ptr<SqlSession> sql;

  Result<bool> Tick(uint64_t elapsed_ms) {
    return shared != nullptr ? shared->MaintenanceTick(elapsed_ms)
                             : sharded->MaintenanceTick(elapsed_ms);
  }
  MaintenanceStats Stats() const {
    return shared != nullptr ? shared->maintenance_stats()
                             : sharded->maintenance_stats();
  }
};

std::vector<Lane> MakeLanes() {
  std::vector<Lane> lanes;
  Lane l;
  l.name = "shared";
  l.shared = std::make_shared<SharedEngine>(Database());
  l.sql = std::make_unique<SqlSession>(l.shared);
  lanes.push_back(std::move(l));
  for (int shards : kShardCounts) {
    Lane s;
    s.name = "shards=" + std::to_string(shards);
    s.sharded = std::make_shared<ShardedEngine>(Database(), shards);
    s.sql = std::make_unique<SqlSession>(EngineHandle::Sharded(s.sharded));
    lanes.push_back(std::move(s));
  }
  return lanes;
}

void RunOnLanes(std::vector<Lane>* lanes, const std::string& sql) {
  for (auto& l : *lanes) MustRun(l.sql.get(), sql);
}

/// Deterministic workload: a fact table and a grouped aggregate view, with
/// three delta rounds.
const char kViewSql[] =
    "SELECT g, COUNT(1) AS c, SUM(v) AS sv FROM F GROUP BY g";

void LoadInitial(std::vector<Lane>* lanes) {
  RunOnLanes(lanes, "CREATE TABLE F (id INT, g INT, v DOUBLE, "
                    "PRIMARY KEY (id))");
  std::string ins = "INSERT INTO F VALUES ";
  for (int i = 0; i < 40; ++i) {
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(i) + ", " + std::to_string(i % 4 + 1) + ", " +
           std::to_string((i * 7) % 31) + ".5)";
  }
  RunOnLanes(lanes, ins);
  RunOnLanes(lanes, "REFRESH ALL");
  RunOnLanes(lanes, std::string("CREATE MATERIALIZED VIEW V AS ") + kViewSql);
}

std::string DeltaBatch(int round) {
  std::string ins = "INSERT INTO F VALUES ";
  for (int i = 0; i < 10; ++i) {
    const int id = 100 + round * 10 + i;
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(id) + ", " + std::to_string(id % 4 + 1) +
           ", " + std::to_string((id * 3) % 17) + ".25)";
  }
  return ins;
}

const char* kQueries[] = {
    "SELECT COUNT(1) AS x FROM V WITH SVC(ratio=0.5, mode=corr)",
    "SELECT SUM(sv) AS x FROM V WITH SVC(ratio=0.5, mode=aqp)",
    "SELECT g, AVG(sv) AS x FROM V GROUP BY g WITH SVC(ratio=0.5, mode=corr)",
};

TEST(MaintenancePolicyTest, PolicyTickMatchesManualRefreshDifferential) {
  // Two fleets over the same statement stream: `policy` lanes refresh only
  // through MaintenanceTick (driven with a deterministic elapsed_ms),
  // `manual` lanes through REFRESH ALL at the same logical points.
  std::vector<Lane> policy = MakeLanes();
  std::vector<Lane> manual = MakeLanes();
  LoadInitial(&policy);
  LoadInitial(&manual);
  // budget=100 keeps the probe's error term negligible, so the tick
  // decision is purely staleness + SLA: Tick(0) scores ~0.7 (warm only),
  // Tick(1000) scores past 1.0 (refresh) — deterministic either way.
  RunOnLanes(&policy,
             "SET MAINTENANCE POLICY (mode=auto, budget=100, sla_ms=100, "
             "ratio=0.5)");

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const std::string batch = DeltaBatch(round);
    RunOnLanes(&policy, batch);
    RunOnLanes(&manual, batch);

    // Below the threshold the tick warms but must not commit anything.
    for (auto& l : policy) {
      SCOPED_TRACE(l.name);
      SVC_ASSERT_OK_AND_ASSIGN(bool refreshed, l.Tick(0));
      EXPECT_FALSE(refreshed);
    }
    // Past the SLA every lane must run exactly one maintenance commit.
    for (auto& l : policy) {
      SCOPED_TRACE(l.name);
      SVC_ASSERT_OK_AND_ASSIGN(bool refreshed, l.Tick(1000));
      EXPECT_TRUE(refreshed);
    }
    RunOnLanes(&manual, "REFRESH ALL");

    // Every lane of both fleets must now answer bit-identically.
    for (const char* q : kQueries) {
      for (int threads : {1, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " query=\"" +
                     std::string(q) + "\"");
        SvcQueryOptions opts;
        opts.exec.num_threads = threads;
        opts.estimator.num_threads = threads;
        manual[0].sql->default_svc_options() = opts;
        SqlResult want = MustRun(manual[0].sql.get(), q);
        for (auto* fleet : {&policy, &manual}) {
          for (auto& l : *fleet) {
            SCOPED_TRACE((fleet == &policy ? "policy " : "manual ") + l.name);
            l.sql->default_svc_options() = opts;
            ExpectResultsBitIdentical(MustRun(l.sql.get(), q), want);
          }
        }
      }
    }
  }
  for (auto& l : policy) {
    EXPECT_EQ(l.Stats().refreshes, 3u) << l.name;
    EXPECT_EQ(l.Stats().ticks, 6u) << l.name;
    EXPECT_GE(l.Stats().warms, 3u) << l.name;
  }
}

TEST(MaintenancePolicyTest, TickIsNoOpUnderModeOff) {
  std::vector<Lane> lanes = MakeLanes();
  LoadInitial(&lanes);
  RunOnLanes(&lanes, DeltaBatch(0));
  for (auto& l : lanes) {
    SCOPED_TRACE(l.name);
    SVC_ASSERT_OK_AND_ASSIGN(bool refreshed, l.Tick(1u << 20));
    EXPECT_FALSE(refreshed);
    EXPECT_EQ(l.Stats().ticks, 0u);
  }
}

// ---- Scheduler thread lifecycle --------------------------------------------

/// Polls until the lane has refreshed at least once (the thread's timing is
/// real; the *state it publishes* is the deterministic part).
bool WaitForRefresh(const Lane& l) {
  for (int i = 0; i < 5000; ++i) {
    if (l.Stats().refreshes >= 1) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(MaintenancePolicyTest, SchedulerThreadRefreshesAndStops) {
  std::vector<Lane> lanes = MakeLanes();
  LoadInitial(&lanes);
  RunOnLanes(&lanes, DeltaBatch(0));
  RunOnLanes(&lanes,
             "SET MAINTENANCE POLICY (mode=auto, sla_ms=1, tick_ms=1)");
  for (auto& l : lanes) {
    if (l.shared != nullptr) {
      l.shared->StartMaintenance();
      l.shared->StartMaintenance();  // idempotent
    } else {
      l.sharded->StartMaintenance();
      l.sharded->StartMaintenance();
    }
  }
  for (auto& l : lanes) {
    SCOPED_TRACE(l.name);
    EXPECT_TRUE(WaitForRefresh(l)) << "scheduler never refreshed";
  }
  for (auto& l : lanes) {
    if (l.shared != nullptr) {
      l.shared->StopMaintenance();
      l.shared->StopMaintenance();  // idempotent
    } else {
      l.sharded->StopMaintenance();
      l.sharded->StopMaintenance();
    }
  }
  // The policy refresh drained the queue — and the lanes still agree.
  for (auto& l : lanes) {
    SCOPED_TRACE(l.name);
    SqlResult stats = MustRun(l.sql.get(), "SHOW STATS");
    ASSERT_EQ(stats.rows.NumRows(), 1u);
    EXPECT_EQ(stats.rows.row(0)[5].AsInt(), 0);  // pending_rows
  }
}

// ---- Kill-and-recover: the maint.refresh crash site ------------------------

TEST(MaintenancePolicyTest, PolicyRefreshCrashRecoversPreRefreshState) {
  const std::string dir = ::testing::TempDir() + "/svc_maint_crash";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // The logical commits the child applies before its scheduler fires: DDL,
  // a committed load, a pending batch, then the policy DDL.
  const std::vector<std::string> sql = {
      "CREATE TABLE F (id INT, g INT, v DOUBLE, PRIMARY KEY (id))",
      "INSERT INTO F VALUES (1, 1, 2.5), (2, 2, 7.5), (3, 1, 1.25)",
      "REFRESH ALL",
      "CREATE MATERIALIZED VIEW V AS SELECT g, COUNT(1) AS c FROM F "
      "GROUP BY g",
      "INSERT INTO F VALUES (4, 2, 9.0), (5, 1, 3.0)",
      "SET MAINTENANCE POLICY (mode=auto, sla_ms=1, tick_ms=1)",
  };

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the injected crash fires inside the scheduler thread at the
    // maint.refresh site — before the refresh's WAL record exists.
    FaultInjector::Global().Arm("maint.refresh", 1);
    DurableOptions o;
    o.data_dir = dir;
    auto opened = DurableEngine::Open(o);
    if (!opened.ok()) _exit(3);
    auto eng = std::move(opened).value();
    SqlSession session(eng);
    for (const std::string& s : sql) {
      if (!session.Execute(s).ok()) _exit(4);
    }
    eng->StartMaintenance();
    // The armed site should fire within a tick or two; cap the wait so a
    // broken scheduler fails the parent's assertion instead of hanging it.
    for (int i = 0; i < 10000; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    _exit(6);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode)
      << "child exited " << WEXITSTATUS(wstatus)
      << " (the armed maint.refresh site was never reached)";

  // Recovery lands on exactly the pre-refresh state: every hand-issued
  // commit (including the policy DDL) is there, the policy refresh is not.
  RecoveryReport report;
  DurableOptions o;
  o.data_dir = dir;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
  EXPECT_EQ(report.recovered_epoch, sql.size());
  const SvcEngine& recovered = eng->shared()->Snapshot()->engine;
  EXPECT_EQ(recovered.maintenance_policy().mode,
            MaintenancePolicyConfig::Mode::kAuto);
  EXPECT_EQ(recovered.maintenance_policy().sla_ms, 1u);
  EXPECT_EQ(recovered.pending().InsertRows("F"), 2u);  // batch still queued
  std::filesystem::remove_all(dir);
}

// ---- Per-view overrides ----------------------------------------------------

TEST(ViewPolicyOverrideTest, ParserOnFormAndRejections) {
  SVC_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      ParseStatement("SET MAINTENANCE POLICY ON V (budget=0.02, ratio=0.3)"));
  EXPECT_EQ(stmt.kind, Statement::Kind::kSetPolicy);
  EXPECT_TRUE(stmt.policy_on_view);
  EXPECT_EQ(stmt.target, "V");
  ASSERT_TRUE(stmt.policy_override.budget.has_value());
  EXPECT_DOUBLE_EQ(*stmt.policy_override.budget, 0.02);
  EXPECT_FALSE(stmt.policy_override.sla_ms.has_value());
  ASSERT_TRUE(stmt.policy_override.ratio.has_value());
  EXPECT_DOUBLE_EQ(*stmt.policy_override.ratio, 0.3);

  // The empty key list is the documented "clear this view's override".
  SVC_ASSERT_OK_AND_ASSIGN(Statement clear,
                           ParseStatement("SET MAINTENANCE POLICY ON V ()"));
  EXPECT_TRUE(clear.policy_on_view);
  EXPECT_TRUE(clear.policy_override.empty());

  // mode and tick_ms belong to the one scheduler thread: global only.
  EXPECT_FALSE(ParseStatement("SET MAINTENANCE POLICY ON V (mode=auto)").ok());
  EXPECT_FALSE(ParseStatement("SET MAINTENANCE POLICY ON V (tick_ms=5)").ok());
  EXPECT_FALSE(ParseStatement("SET MAINTENANCE POLICY ON V (bogus=1)").ok());
  EXPECT_FALSE(ParseStatement("SET MAINTENANCE POLICY ON V (ratio=1.5)").ok());
}

TEST(ViewPolicyOverrideTest, EffectiveForFoldsOverrideFields) {
  MaintenancePolicyConfig cfg;
  cfg.mode = MaintenancePolicyConfig::Mode::kAuto;
  cfg.budget = 0.1;
  cfg.sla_ms = 5000;
  cfg.ratio = 0.1;
  cfg.overrides["V"].budget = 0.02;
  cfg.overrides["V"].sla_ms = 250;
  cfg.overrides["W"].ratio = 0.5;

  const MaintenancePolicyConfig v = EffectiveFor(cfg, "V");
  EXPECT_EQ(v.mode, cfg.mode);
  EXPECT_DOUBLE_EQ(v.budget, 0.02);
  EXPECT_EQ(v.sla_ms, 250u);
  EXPECT_DOUBLE_EQ(v.ratio, 0.1);  // unset field falls through to global
  EXPECT_TRUE(v.overrides.empty());

  const MaintenancePolicyConfig w = EffectiveFor(cfg, "W");
  EXPECT_DOUBLE_EQ(w.budget, 0.1);
  EXPECT_EQ(w.sla_ms, 5000u);
  EXPECT_DOUBLE_EQ(w.ratio, 0.5);

  // A view with no override runs the globals verbatim.
  EXPECT_DOUBLE_EQ(EffectiveFor(cfg, "other").budget, 0.1);
  EXPECT_TRUE(EffectiveFor(cfg, "other").overrides.empty());
}

TEST(ViewPolicyOverrideTest, DescribeAppendsOverridesOnlyWhenPresent) {
  MaintenancePolicyConfig cfg;
  cfg.mode = MaintenancePolicyConfig::Mode::kAuto;
  cfg.budget = 0.05;
  cfg.sla_ms = 1000;
  EXPECT_EQ(DescribeMaintenancePolicy(cfg),
            "mode=auto budget=0.05 sla_ms=1000");
  cfg.overrides["V"].budget = 0.02;
  cfg.overrides["V"].sla_ms = 250;
  EXPECT_EQ(DescribeMaintenancePolicy(cfg),
            "mode=auto budget=0.05 sla_ms=1000 overrides: "
            "V(budget=0.02 sla_ms=250)");
}

TEST(ViewPolicyOverrideTest, PolicyCodecRoundTripsOverrides) {
  MaintenancePolicyConfig cfg;
  cfg.mode = MaintenancePolicyConfig::Mode::kAuto;
  cfg.budget = 0.07;
  cfg.sla_ms = 123;
  cfg.tick_ms = 9;
  cfg.ratio = 0.4;
  cfg.overrides["a"].budget = 0.01;
  cfg.overrides["b"].sla_ms = 42;
  cfg.overrides["b"].ratio = 0.9;
  std::string bytes;
  EncodeMaintenancePolicy(cfg, &bytes);
  ByteReader r(bytes);
  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePolicyConfig back,
                           DecodeMaintenancePolicy(&r));
  EXPECT_TRUE(back == cfg);

  // And the pre-override shape still round-trips unchanged.
  const MaintenancePolicyConfig plain;
  bytes.clear();
  EncodeMaintenancePolicy(plain, &bytes);
  ByteReader r2(bytes);
  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePolicyConfig back2,
                           DecodeMaintenancePolicy(&r2));
  EXPECT_TRUE(back2 == plain);
}

TEST(ViewPolicyOverrideTest, OnFormSqlEndToEnd) {
  SqlSession session(EngineHandle::Private());
  MustRun(&session, "CREATE TABLE F (id INT, g INT, PRIMARY KEY (id))");
  MustRun(&session, "INSERT INTO F VALUES (1, 1), (2, 2)");
  MustRun(&session, "REFRESH ALL");
  MustRun(&session,
          "CREATE MATERIALIZED VIEW V AS SELECT g, COUNT(1) AS c FROM F "
          "GROUP BY g");

  auto missing =
      session.Execute("SET MAINTENANCE POLICY ON nosuch (budget=0.05)");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  MustRun(&session, "SET MAINTENANCE POLICY ON V (budget=0.02, sla_ms=250)");
  SqlResult shown = MustRun(&session, "SHOW MAINTENANCE");
  EXPECT_NE(shown.message.find("overrides: V(budget=0.02 sla_ms=250)"),
            std::string::npos)
      << shown.message;

  // Re-SETting the globals keeps the per-view override...
  MustRun(&session, "SET MAINTENANCE POLICY (mode=auto, budget=0.2)");
  shown = MustRun(&session, "SHOW MAINTENANCE");
  EXPECT_NE(shown.message.find("overrides: V("), std::string::npos)
      << shown.message;

  // ...and the empty ON-form clears exactly that view's entry.
  MustRun(&session, "SET MAINTENANCE POLICY ON V ()");
  shown = MustRun(&session, "SHOW MAINTENANCE");
  EXPECT_EQ(shown.message.find("overrides"), std::string::npos)
      << shown.message;
}

TEST(ViewPolicyOverrideTest, OverrideSurvivesDurableRecovery) {
  const std::string dir = ::testing::TempDir() + "/svc_policy_override";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    DurableOptions o;
    o.data_dir = dir;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    SqlSession session(eng);
    MustRun(&session, "CREATE TABLE F (id INT, g INT, PRIMARY KEY (id))");
    MustRun(&session, "INSERT INTO F VALUES (1, 1), (2, 2)");
    MustRun(&session, "REFRESH ALL");
    MustRun(&session,
            "CREATE MATERIALIZED VIEW V AS SELECT g, COUNT(1) AS c FROM F "
            "GROUP BY g");
    MustRun(&session, "SET MAINTENANCE POLICY (mode=auto, budget=0.1)");
    MustRun(&session, "SET MAINTENANCE POLICY ON V (budget=0.02, ratio=0.5)");
  }
  DurableOptions o;
  o.data_dir = dir;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
  const MaintenancePolicyConfig cfg =
      eng->shared()->Snapshot()->engine.maintenance_policy();
  EXPECT_EQ(cfg.mode, MaintenancePolicyConfig::Mode::kAuto);
  ASSERT_EQ(cfg.overrides.count("V"), 1u);
  ASSERT_TRUE(cfg.overrides.at("V").budget.has_value());
  EXPECT_DOUBLE_EQ(*cfg.overrides.at("V").budget, 0.02);
  EXPECT_FALSE(cfg.overrides.at("V").sla_ms.has_value());
  ASSERT_TRUE(cfg.overrides.at("V").ratio.has_value());
  EXPECT_DOUBLE_EQ(*cfg.overrides.at("V").ratio, 0.5);
  std::filesystem::remove_all(dir);
}

TEST(ViewPolicyOverrideTest, ShardedSessionMatchesShared) {
  const std::vector<std::string> sql = {
      "CREATE TABLE F (id INT, g INT, PRIMARY KEY (id))",
      "INSERT INTO F VALUES (1, 1), (2, 2), (3, 1)",
      "REFRESH ALL",
      "CREATE MATERIALIZED VIEW V AS SELECT g, COUNT(1) AS c FROM F "
      "GROUP BY g",
      "SET MAINTENANCE POLICY ON V (budget=0.02, sla_ms=250)",
  };
  std::string want;
  {
    SqlSession shared(
        EngineHandle::Shared(std::make_shared<SharedEngine>(Database())));
    for (const std::string& s : sql) MustRun(&shared, s);
    want = MustRun(&shared, "SHOW MAINTENANCE").message;
  }
  EXPECT_NE(want.find("overrides: V("), std::string::npos) << want;
  for (int shards : {1, 2, 4}) {
    SqlSession session(EngineHandle::Sharded(
        std::make_shared<ShardedEngine>(Database(), shards)));
    for (const std::string& s : sql) MustRun(&session, s);
    EXPECT_EQ(MustRun(&session, "SHOW MAINTENANCE").message, want)
        << shards << " shard(s)";
  }
}

}  // namespace
}  // namespace svc
