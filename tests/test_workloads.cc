#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "conviva/conviva.h"
#include "minibatch/cluster_sim.h"
#include "relational/executor.h"
#include "sample/cleaner.h"
#include "sql/planner.h"
#include "tests/test_util.h"
#include "tpcd/tpcd_gen.h"
#include "tpcd/tpcd_views.h"
#include "view/maintenance.h"

namespace svc {
namespace {

using testing_util::ExpectTablesEquivalent;

TpcdConfig SmallTpcd() {
  TpcdConfig cfg;
  cfg.scale_factor = 0.002;  // ~3k orders, ~12k lineitems
  cfg.zipf_z = 2.0;
  return cfg;
}

TEST(TpcdGenTest, SchemaAndCardinalities) {
  SVC_ASSERT_OK_AND_ASSIGN(Database db, GenerateTpcdDatabase(SmallTpcd()));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* li, db.GetTable("lineitem"));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* ord, db.GetTable("orders"));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* cust, db.GetTable("customer"));
  EXPECT_EQ(ord->NumRows(), 3000u);
  EXPECT_EQ(cust->NumRows(), 30u);
  // 1..7 lineitems per order.
  EXPECT_GE(li->NumRows(), ord->NumRows());
  EXPECT_LE(li->NumRows(), ord->NumRows() * 7);
  EXPECT_TRUE(li->HasPrimaryKey());
  EXPECT_EQ(li->pk_indices().size(), 2u);  // composite key
}

TEST(TpcdGenTest, DeterministicForSameSeed) {
  SVC_ASSERT_OK_AND_ASSIGN(Database a, GenerateTpcdDatabase(SmallTpcd()));
  SVC_ASSERT_OK_AND_ASSIGN(Database b, GenerateTpcdDatabase(SmallTpcd()));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* la, a.GetTable("lineitem"));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* lb, b.GetTable("lineitem"));
  ASSERT_EQ(la->NumRows(), lb->NumRows());
  EXPECT_TRUE(la->row(17) == lb->row(17));
}

TEST(TpcdGenTest, SkewShowsInPrices) {
  TpcdConfig flat = SmallTpcd();
  flat.zipf_z = 0.0;
  TpcdConfig skewed = SmallTpcd();
  skewed.zipf_z = 3.0;
  SVC_ASSERT_OK_AND_ASSIGN(Database dflat, GenerateTpcdDatabase(flat));
  SVC_ASSERT_OK_AND_ASSIGN(Database dskew, GenerateTpcdDatabase(skewed));
  auto price_var = [](const Database& db) {
    const Table* li = db.GetTable("lineitem").value();
    size_t idx = li->schema().Resolve("l_extendedprice").value();
    double mean = 0;
    for (const auto& r : li->rows()) mean += r[idx].ToDouble();
    mean /= li->NumRows();
    double var = 0;
    for (const auto& r : li->rows()) {
      const double d = r[idx].ToDouble() - mean;
      var += d * d;
    }
    return var / li->NumRows();
  };
  EXPECT_GT(price_var(dskew), price_var(dflat));
}

TEST(TpcdGenTest, UpdateStreamVolumeAndValidity) {
  SVC_ASSERT_OK_AND_ASSIGN(Database db, GenerateTpcdDatabase(SmallTpcd()));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* li, db.GetTable("lineitem"));
  const size_t base = li->NumRows();
  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  SVC_ASSERT_OK_AND_ASSIGN(DeltaSet deltas,
                           GenerateTpcdUpdates(db, SmallTpcd(), ucfg));
  const size_t volume = deltas.TotalInserts();
  EXPECT_NEAR(static_cast<double>(volume),
              static_cast<double>(base) * 0.10, base * 0.06);
  // The deltas must apply cleanly (keys consistent).
  SVC_ASSERT_OK(deltas.Register(&db));
  SVC_ASSERT_OK(deltas.ApplyToBase(&db));
}

TEST(TpcdViewsTest, JoinViewMaintainsAndCleans) {
  SVC_ASSERT_OK_AND_ASSIGN(Database db, GenerateTpcdDatabase(SmallTpcd()));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("join_view", TpcdJoinViewDef(), &db,
                               TpcdJoinViewSamplingKey()));
  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.08;
  SVC_ASSERT_OK_AND_ASSIGN(DeltaSet deltas,
                           GenerateTpcdUpdates(db, SmallTpcd(), ucfg));
  SVC_ASSERT_OK(deltas.Register(&db));

  // Clean sample == η(fresh view).
  CleanOptions opts{0.1, HashFamily::kFnv1a};
  PushdownReport report;
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples samples,
                           CleanViewSample(view, deltas, db, opts, &report));
  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                           BuildMaintenancePlan(view, deltas, db));
  EXPECT_EQ(static_cast<int>(plan.kind),
            static_cast<int>(MaintenanceKind::kChangeTable));
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh, ExecutePlan(*plan.plan, db));
  SVC_ASSERT_OK(fresh.SetPrimaryKey(view.stored_pk()));
  db.PutTable("__fresh", fresh);
  SVC_ASSERT_OK_AND_ASSIGN(
      Table expected,
      ExecutePlan(*PlanNode::HashFilter(PlanNode::Scan("__fresh"),
                                        view.sampling_key(), opts.ratio,
                                        opts.family),
                  db));
  SVC_ASSERT_OK(expected.SetPrimaryKey(view.stored_pk()));
  ExpectTablesEquivalent(samples.fresh, expected);
  EXPECT_GT(samples.fresh.NumRows(), 0u);
}

TEST(TpcdViewsTest, JoinViewQueriesAllEvaluate) {
  SVC_ASSERT_OK_AND_ASSIGN(Database db, GenerateTpcdDatabase(SmallTpcd()));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("join_view", TpcdJoinViewDef(), &db,
                               TpcdJoinViewSamplingKey()));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* data, db.GetTable("join_view"));
  auto queries = TpcdJoinViewQueries();
  EXPECT_EQ(queries.size(), 12u);
  for (const auto& vq : queries) {
    auto res = ExactAggregateGrouped(*data, vq.group_by, vq.query);
    ASSERT_TRUE(res.ok()) << vq.name << ": " << res.status().ToString();
    EXPECT_GT(res->group_keys.size(), 0u) << vq.name;
  }
}

class ComplexViewTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ComplexViewTest, CreatesMaintainsCleans) {
  static Database* db = [] {
    auto d = GenerateTpcdDatabase(SmallTpcd());
    EXPECT_TRUE(d.ok());
    return new Database(std::move(d).value());
  }();
  const ComplexView cv = TpcdComplexViews()[GetParam()];
  SVC_ASSERT_OK_AND_ASSIGN(PlanPtr def, SqlToPlan(cv.sql, *db));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create(cv.name, def, db, cv.sampling_key));

  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.05;
  ucfg.seed = 11 + GetParam();
  SVC_ASSERT_OK_AND_ASSIGN(DeltaSet deltas,
                           GenerateTpcdUpdates(*db, SmallTpcd(), ucfg));
  SVC_ASSERT_OK(deltas.Register(db));

  // Maintenance result == fresh recompute oracle.
  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                           BuildMaintenancePlan(view, deltas, *db));
  SVC_ASSERT_OK_AND_ASSIGN(Table maintained, ExecutePlan(*plan.plan, *db));
  SVC_ASSERT_OK(maintained.SetPrimaryKey(view.stored_pk()));
  SVC_ASSERT_OK_AND_ASSIGN(PlanPtr recompute,
                           BuildRecomputePlan(view, deltas));
  SVC_ASSERT_OK_AND_ASSIGN(Table oracle, ExecutePlan(*recompute, *db));
  SVC_ASSERT_OK(oracle.SetPrimaryKey(view.stored_pk()));
  ExpectTablesEquivalent(maintained, oracle, 1e-6);

  // Cleaning matches η of the oracle.
  CleanOptions opts{0.2, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples samples,
                           CleanViewSample(view, deltas, *db, opts));
  db->PutTable("__oracle", oracle);
  SVC_ASSERT_OK_AND_ASSIGN(
      Table expected,
      ExecutePlan(*PlanNode::HashFilter(PlanNode::Scan("__oracle"),
                                        view.sampling_key(), opts.ratio,
                                        opts.family),
                  *db));
  SVC_ASSERT_OK(expected.SetPrimaryKey(view.stored_pk()));
  ExpectTablesEquivalent(samples.fresh, expected, 1e-6);

  SVC_ASSERT_OK(db->DropTable("__oracle"));
  SVC_ASSERT_OK(db->DropTable(cv.name));
}

INSTANTIATE_TEST_SUITE_P(AllViews, ComplexViewTest,
                         ::testing::Range<size_t>(0, 10),
                         [](const auto& info) {
                           return TpcdComplexViews()[info.param].name;
                         });

TEST(TpcdCubeTest, CubeViewAndRollups) {
  TpcdConfig cfg = SmallTpcd();
  cfg.zipf_z = 1.0;
  SVC_ASSERT_OK_AND_ASSIGN(Database db, GenerateTpcdDatabase(cfg));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("cube", TpcdCubeViewDef(), &db));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* data, db.GetTable("cube"));
  EXPECT_GT(data->NumRows(), 1000u);
  for (const auto& vq : TpcdCubeRollups()) {
    auto res = ExactAggregateGrouped(*data, vq.group_by, vq.query);
    ASSERT_TRUE(res.ok()) << vq.name;
    EXPECT_GE(res->group_keys.size(), 1u) << vq.name;
  }
  EXPECT_EQ(TpcdCubeRollups().size(), 13u);
}

TEST(TpcdRandomQueriesTest, GeneratorProducesValidQueries) {
  SVC_ASSERT_OK_AND_ASSIGN(Database db, GenerateTpcdDatabase(SmallTpcd()));
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("jv", TpcdJoinViewDef(), &db,
                               TpcdJoinViewSamplingKey()));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* data, db.GetTable("jv"));
  Rng rng(3);
  auto queries = GenerateRandomViewQueries(
      *data, {"o_orderpriority", "l_shipmode", "o_orderdate"},
      {"l_extendedprice", "l_quantity", "o_totalprice"}, 20, &rng);
  EXPECT_GE(queries.size(), 15u);
  for (const auto& vq : queries) {
    auto r = ExactAggregate(*data, vq.query);
    ASSERT_TRUE(r.ok()) << vq.name;
  }
}

TEST(ConvivaTest, GeneratorShape) {
  ConvivaConfig cfg;
  cfg.num_sessions = 5000;
  SVC_ASSERT_OK_AND_ASSIGN(Database db, GenerateConvivaDatabase(cfg));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* t, db.GetTable("activity"));
  EXPECT_EQ(t->NumRows(), 5000u);
  // Zipfian resource popularity: the hottest resource dominates.
  std::map<int64_t, int> counts;
  size_t res_idx = t->schema().Resolve("resourceId").value();
  for (const auto& r : t->rows()) counts[r[res_idx].AsInt()]++;
  EXPECT_GT(counts[1], 5000 / cfg.num_resources * 5);
}

class ConvivaViewTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ConvivaViewTest, CreatesMaintainsCleans) {
  static Database* db = [] {
    ConvivaConfig cfg;
    cfg.num_sessions = 8000;
    auto d = GenerateConvivaDatabase(cfg);
    EXPECT_TRUE(d.ok());
    return new Database(std::move(d).value());
  }();
  const ConvivaView cv = ConvivaViews()[GetParam()];
  SVC_ASSERT_OK_AND_ASSIGN(PlanPtr def, SqlToPlan(cv.sql, *db));
  SVC_ASSERT_OK_AND_ASSIGN(MaterializedView view,
                           MaterializedView::Create(cv.name, def, db));

  ConvivaConfig cfg;
  cfg.num_sessions = 8000;
  SVC_ASSERT_OK_AND_ASSIGN(DeltaSet deltas,
                           GenerateConvivaUpdates(*db, cfg, 0.05,
                                                  77 + GetParam()));
  SVC_ASSERT_OK(deltas.Register(db));

  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                           BuildMaintenancePlan(view, deltas, *db));
  SVC_ASSERT_OK_AND_ASSIGN(Table maintained, ExecutePlan(*plan.plan, *db));
  SVC_ASSERT_OK(maintained.SetPrimaryKey(view.stored_pk()));
  SVC_ASSERT_OK_AND_ASSIGN(PlanPtr recompute,
                           BuildRecomputePlan(view, deltas));
  SVC_ASSERT_OK_AND_ASSIGN(Table oracle, ExecutePlan(*recompute, *db));
  SVC_ASSERT_OK(oracle.SetPrimaryKey(view.stored_pk()));
  ExpectTablesEquivalent(maintained, oracle, 1e-6);

  SVC_ASSERT_OK(db->DropTable(cv.name));
}

INSTANTIATE_TEST_SUITE_P(AllViews, ConvivaViewTest,
                         ::testing::Range<size_t>(0, 8),
                         [](const auto& info) {
                           return ConvivaViews()[info.param].name;
                         });

TEST(ClusterSimTest, ThroughputIncreasesWithBatchSize) {
  ClusterModel model;
  double prev = 0;
  for (double gb : {5.0, 20.0, 80.0, 160.0}) {
    const double rate = model.Throughput(gb, 1);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(ClusterSimTest, TwoThreadsReduceThroughputMoreForSmallBatches) {
  ClusterModel model;
  const double small_drop =
      model.Throughput(5, 1) / model.Throughput(5, 2);
  const double large_drop =
      model.Throughput(160, 1) / model.Throughput(160, 2);
  EXPECT_GT(small_drop, large_drop);
  EXPECT_GT(small_drop, 1.2);
}

TEST(ClusterSimTest, MinBatchMonotoneInTarget) {
  ClusterModel model;
  const double b1 = model.MinBatchForThroughput(500000, 1);
  const double b2 = model.MinBatchForThroughput(700000, 1);
  ASSERT_GT(b1, 0);
  ASSERT_GT(b2, 0);
  EXPECT_LT(b1, b2);
  // Needing the same throughput with two threads requires larger batches.
  const double b1_2t = model.MinBatchForThroughput(500000, 2);
  EXPECT_GT(b1_2t, b1);
}

TEST(ClusterSimTest, SvcErrorHasInteriorOptimum) {
  ClusterModel model;
  const double ivm_batch = model.MinBatchForThroughput(500000, 2);
  ASSERT_GT(ivm_batch, 0);
  // Sweep sampling ratios; the best error should not be at either extreme.
  std::vector<double> ratios = {0.005, 0.02, 0.05, 0.1, 0.18, 0.27};
  double best = 1e18;
  size_t best_i = 0;
  for (size_t i = 0; i < ratios.size(); ++i) {
    const double err = model.MaxErrorWithSvc(ivm_batch, ivm_batch / 4,
                                             ratios[i]);
    if (err < best) {
      best = err;
      best_i = i;
    }
  }
  EXPECT_GT(best_i, 0u);
  EXPECT_LT(best_i, ratios.size() - 1);
  // And the optimum beats IVM alone.
  EXPECT_LT(best, model.MaxErrorIvmOnly(ivm_batch));
}

TEST(ClusterSimTest, SvcFillsIdleCpuWindows) {
  ClusterModel model;
  auto without = model.UtilizationTrace(300, false, 40);
  auto with = model.UtilizationTrace(300, true, 40);
  ASSERT_EQ(without.size(), with.size());
  double mean_without = 0, mean_with = 0;
  for (size_t i = 0; i < without.size(); ++i) {
    mean_without += without[i];
    mean_with += with[i];
  }
  EXPECT_GT(mean_with, mean_without);
}

}  // namespace
}  // namespace svc
