// Durability and recovery (storage/durable_engine.h): reopen round-trips,
// checkpoint + WAL-tail recovery, torn tails, unreadable-checkpoint
// fallback, the durable SQL surface (CHECKPOINT, SHOW STATS counters) —
// and the kill-and-recover differential harness: a forked child arms the
// fault injector at one crash site, runs a seeded workload until the
// injected crash (_exit, no cleanup), then the parent recovers the
// directory and asserts the recovered engine's state and query answers are
// bit-identical to a never-crashed replica that applied the same logical
// commit prefix in memory.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sql/planner.h"
#include "sql/session.h"
#include "storage/checkpoint.h"
#include "storage/durable_engine.h"
#include "storage/fault.h"
#include "storage/serde.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

constexpr char kVisitViewSql[] =
    "SELECT Log.videoId, COUNT(1) AS visitCount "
    "FROM Log, Video WHERE Log.videoId = Video.videoId "
    "GROUP BY Log.videoId";

/// The workload checkpoints after applying ops[0..kCkptAfter] inclusive.
constexpr size_t kCkptAfter = 10;
constexpr size_t kWorkloadSteps = 24;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/svc_rec_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// A deterministic logical-commit stream: table + view DDL, then seeded
/// inserts / deletes / refreshes. Pure in `seed`, so the same call
/// reproduces the exact ops a crashed child was applying.
std::vector<DurableOp> MakeWorkloadOps(uint64_t seed, size_t steps) {
  std::vector<DurableOp> ops;
  Database db = MakeLogVideoDb();
  ops.push_back(DurableOp::CreateTableOp("Log", **db.GetTable("Log")));
  ops.push_back(DurableOp::CreateTableOp("Video", **db.GetTable("Video")));
  ops.push_back(DurableOp::CreateViewOp(
      "visitView", SqlToPlan(kVisitViewSql, db).value(), {}));

  uint64_t rng = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };
  int64_t next_session = 100;
  // Rows committed into Log (and not yet queued for deletion) — the
  // original ten plus whatever a REFRESH committed.
  std::vector<Row> committed;
  const int64_t visits[10] = {1, 1, 1, 2, 2, 3, 3, 3, 3, 2};
  for (int64_t s = 0; s < 10; ++s) {
    committed.push_back({Value::Int(s), Value::Int(visits[s])});
  }
  std::vector<Row> pending;

  for (size_t i = 0; i < steps; ++i) {
    const uint64_t roll = next() % 10;
    if (roll >= 8 && !committed.empty()) {
      Row doomed = committed[next() % committed.size()];
      committed.erase(std::find(committed.begin(), committed.end(), doomed));
      ops.push_back(DurableOp::DeleteOp("Log", {doomed}));
    } else if (roll >= 6) {
      ops.push_back(DurableOp::RefreshOp());
      committed.insert(committed.end(), pending.begin(), pending.end());
      pending.clear();
    } else {
      Row row = {Value::Int(next_session++),
                 Value::Int(static_cast<int64_t>(next() % 5 + 1))};
      pending.push_back(row);
      ops.push_back(DurableOp::InsertOp("Log", {std::move(row)}));
    }
  }
  return ops;
}

/// The never-crashed replica: the first `prefix` logical commits applied
/// in memory through the same entry points replay uses.
SvcEngine MakeReplica(const std::vector<DurableOp>& ops, size_t prefix) {
  SvcEngine replica((Database()));
  for (size_t i = 0; i < prefix; ++i) {
    EXPECT_TRUE(ApplyDurableOp(ops[i], &replica).ok()) << "replica op " << i;
  }
  return replica;
}

/// Asserts bit-identical engine state and bit-identical SVC answers
/// (estimate value, CI bounds, mode, sample rows) between two engines.
void ExpectBitIdentical(const SvcEngine& recovered, const SvcEngine& replica,
                        uint64_t epoch) {
  std::string a, b;
  SVC_ASSERT_OK(EncodeEngineState(recovered, epoch, &a));
  SVC_ASSERT_OK(EncodeEngineState(replica, epoch, &b));
  EXPECT_TRUE(a == b) << "encoded engine states diverge ("
                      << a.size() << " vs " << b.size() << " bytes)";

  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  for (EstimatorMode mode : {EstimatorMode::kCorr, EstimatorMode::kAqp}) {
    SvcQueryOptions opts;
    opts.ratio = 0.5;
    opts.mode = mode;
    SvcAnswer ra = recovered.Query("visitView", q, opts).value();
    SvcAnswer rb = replica.Query("visitView", q, opts).value();
    EXPECT_EQ(BitsOf(ra.estimate.value), BitsOf(rb.estimate.value));
    EXPECT_EQ(BitsOf(ra.estimate.ci_low), BitsOf(rb.estimate.ci_low));
    EXPECT_EQ(BitsOf(ra.estimate.ci_high), BitsOf(rb.estimate.ci_high));
    EXPECT_EQ(ra.estimate.has_ci, rb.estimate.has_ci);
    EXPECT_EQ(ra.estimate.sample_rows, rb.estimate.sample_rows);
    EXPECT_EQ(ra.mode_used, rb.mode_used);
  }
  EXPECT_EQ(BitsOf(recovered.QueryStale("visitView", q).value()),
            BitsOf(replica.QueryStale("visitView", q).value()));
}

/// Applies the full workload against a durable engine in `dir`, with one
/// checkpoint after ops[kCkptAfter]. Exit codes: distinct small numbers
/// for setup failures so the parent can tell them from the injected crash.
void RunWorkloadOrExit(const std::string& dir,
                       const std::vector<DurableOp>& ops) {
  DurableOptions o;
  o.data_dir = dir;
  auto opened = DurableEngine::Open(o);
  if (!opened.ok()) _exit(3);
  auto eng = std::move(opened).value();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!eng->Apply(ops[i]).ok()) _exit(4);
    if (i == kCkptAfter && !eng->Checkpoint().ok()) _exit(5);
  }
  _exit(0);
}

TEST_F(RecoveryTest, ReopenRoundTripIsBitIdentical) {
  const std::vector<DurableOp> ops = MakeWorkloadOps(11, kWorkloadSteps);
  {
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    for (const DurableOp& op : ops) SVC_ASSERT_OK(eng->Apply(op));
    EXPECT_EQ(eng->epoch(), ops.size());
  }
  RecoveryReport report;
  DurableOptions o;
  o.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
  EXPECT_EQ(report.recovered_epoch, ops.size());
  EXPECT_EQ(report.checkpoint_epoch, 0u);  // never checkpointed
  EXPECT_EQ(report.wal_records_replayed, ops.size());
  EXPECT_FALSE(report.torn_tail);
  SvcEngine replica = MakeReplica(ops, ops.size());
  ExpectBitIdentical(eng->shared()->Snapshot()->engine, replica, ops.size());
}

TEST_F(RecoveryTest, CheckpointPlusWalTailRecovers) {
  const std::vector<DurableOp> ops = MakeWorkloadOps(12, kWorkloadSteps);
  {
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    for (size_t i = 0; i < ops.size(); ++i) {
      SVC_ASSERT_OK(eng->Apply(ops[i]));
      if (i == kCkptAfter) {
        SVC_ASSERT_OK_AND_ASSIGN(uint64_t e, eng->Checkpoint());
        EXPECT_EQ(e, kCkptAfter + 1);
        // The checkpoint superseded the initial WAL.
        EXPECT_FALSE(std::filesystem::exists(dir_ + "/" + WalFileName(0)));
      }
    }
    const DurabilityStats stats = eng->stats();
    EXPECT_EQ(stats.last_checkpoint_epoch, kCkptAfter + 1);
    EXPECT_EQ(stats.wal_records, ops.size() - (kCkptAfter + 1));
  }
  RecoveryReport report;
  DurableOptions o;
  o.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
  EXPECT_EQ(report.checkpoint_epoch, kCkptAfter + 1);
  EXPECT_EQ(report.wal_records_replayed, ops.size() - (kCkptAfter + 1));
  EXPECT_EQ(report.recovered_epoch, ops.size());
  SvcEngine replica = MakeReplica(ops, ops.size());
  ExpectBitIdentical(eng->shared()->Snapshot()->engine, replica, ops.size());
}

TEST_F(RecoveryTest, AutoCheckpointEvery) {
  const std::vector<DurableOp> ops = MakeWorkloadOps(13, kWorkloadSteps);
  {
    DurableOptions o;
    o.data_dir = dir_;
    o.checkpoint_every = 5;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    for (const DurableOp& op : ops) SVC_ASSERT_OK(eng->Apply(op));
    const DurabilityStats stats = eng->stats();
    EXPECT_GT(stats.last_checkpoint_epoch, 0u);
    EXPECT_LT(stats.wal_records, 5u);
  }
  RecoveryReport report;
  DurableOptions o;
  o.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
  EXPECT_EQ(report.recovered_epoch, ops.size());
  ExpectBitIdentical(eng->shared()->Snapshot()->engine,
                     MakeReplica(ops, ops.size()), ops.size());
}

TEST_F(RecoveryTest, TornWalTailRecoversToLastCompleteEpoch) {
  const std::vector<DurableOp> ops = MakeWorkloadOps(14, kWorkloadSteps);
  {
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    for (const DurableOp& op : ops) SVC_ASSERT_OK(eng->Apply(op));
  }
  // Tear the final record by hand: drop the last 3 bytes of the log.
  const std::string wal = dir_ + "/" + WalFileName(0);
  const uint64_t size = std::filesystem::file_size(wal);
  SVC_ASSERT_OK(TruncateFile(wal, size - 3));

  RecoveryReport report;
  DurableOptions o;
  o.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
  EXPECT_TRUE(report.torn_tail);
  EXPECT_NE(report.warning.find("torn WAL tail"), std::string::npos);
  EXPECT_EQ(report.recovered_epoch, ops.size() - 1);
  ExpectBitIdentical(eng->shared()->Snapshot()->engine,
                     MakeReplica(ops, ops.size() - 1), ops.size() - 1);
}

TEST_F(RecoveryTest, UnreadableCheckpointFallsBackWithWarning) {
  const std::vector<DurableOp> ops = MakeWorkloadOps(15, kWorkloadSteps);
  {
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    for (size_t i = 0; i < ops.size(); ++i) {
      SVC_ASSERT_OK(eng->Apply(ops[i]));
      if (i == kCkptAfter) SVC_ASSERT_OK(eng->Checkpoint().status());
    }
  }
  // Flip a byte in the middle of the checkpoint: CRC validation must
  // reject it and recovery must fall back (to the empty state here — the
  // pre-checkpoint WAL was superseded and removed) instead of aborting.
  const std::string ckpt = dir_ + "/" + CheckpointFileName(kCkptAfter + 1);
  {
    std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(ckpt) / 2));
    char c;
    f.seekg(f.tellp());
    f.get(c);
    f.seekp(-1, std::ios::cur);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  RecoveryReport report;
  DurableOptions o;
  o.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
  EXPECT_NE(report.warning.find("skipping unreadable checkpoint"),
            std::string::npos)
      << report.warning;
  // The fallback state is older but consistent; the tail WAL no longer
  // chains onto it, so recovery surfaces the checkpoint-only state.
  EXPECT_EQ(report.checkpoint_epoch, 0u);
  (void)eng;
}

TEST_F(RecoveryTest, SqlSessionDurableStatsAndCheckpointStatement) {
  DurableOptions o;
  o.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
  SqlSession session(eng);
  EXPECT_TRUE(session.is_shared());
  SVC_ASSERT_OK(session
                    .Execute("CREATE TABLE T (a INT, b INT, "
                             "PRIMARY KEY (a));")
                    .status());
  SVC_ASSERT_OK(session.Execute("INSERT INTO T VALUES (1, 10);").status());
  SVC_ASSERT_OK(session.Execute("REFRESH ALL;").status());
  SVC_ASSERT_OK(
      session
          .Execute("CREATE MATERIALIZED VIEW V AS SELECT a, b FROM T;")
          .status());

  SVC_ASSERT_OK_AND_ASSIGN(SqlResult stats, session.Execute("SHOW STATS;"));
  const Schema& schema = stats.rows.schema();
  ASSERT_EQ(schema.NumColumns(), 11u);
  EXPECT_EQ(schema.column(7).name, "wal_records");
  EXPECT_EQ(schema.column(8).name, "wal_bytes");
  EXPECT_EQ(schema.column(9).name, "last_checkpoint_epoch");
  EXPECT_EQ(schema.column(10).name, "recovered_epoch");
  ASSERT_EQ(stats.rows.NumRows(), 1u);
  EXPECT_EQ(stats.rows.row(0)[7].AsInt(), 4);  // four logged commits
  EXPECT_GT(stats.rows.row(0)[8].AsInt(), 0);
  EXPECT_EQ(stats.rows.row(0)[9].AsInt(), 0);
  EXPECT_EQ(stats.rows.row(0)[10].AsInt(), 0);

  SVC_ASSERT_OK_AND_ASSIGN(SqlResult ckpt, session.Execute("CHECKPOINT;"));
  EXPECT_EQ(ckpt.message, "checkpoint at epoch 4");
  SVC_ASSERT_OK_AND_ASSIGN(stats, session.Execute("SHOW STATS;"));
  EXPECT_EQ(stats.rows.row(0)[7].AsInt(), 0);  // WAL rotated
  EXPECT_EQ(stats.rows.row(0)[9].AsInt(), 4);

  // Non-durable sessions accept CHECKPOINT as a no-op...
  SqlSession plain;
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult skipped, plain.Execute("CHECKPOINT;"));
  EXPECT_NE(skipped.message.find("skipped"), std::string::npos);
  // ...and keep the original seven SHOW STATS columns.
  SVC_ASSERT_OK(plain
                    .Execute("CREATE TABLE T (a INT, PRIMARY KEY (a));")
                    .status());
  SVC_ASSERT_OK(
      plain.Execute("CREATE MATERIALIZED VIEW W AS SELECT a FROM T;")
          .status());
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult plain_stats,
                           plain.Execute("SHOW STATS;"));
  EXPECT_EQ(plain_stats.rows.schema().NumColumns(), 7u);
}

TEST_F(RecoveryTest, DeltaVersionSurvivesCheckpointAndReplay) {
  // The pending queue's mutation counter (SHOW STATS's delta_version) must
  // re-pair with the recovered state: restarting it from zero would alias
  // sample-cache keys across the restart and visibly reset the counter.
  int64_t before = 0;
  {
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    SqlSession session(eng);
    SVC_ASSERT_OK(session
                      .Execute("CREATE TABLE T (a INT, b INT, "
                               "PRIMARY KEY (a));")
                      .status());
    SVC_ASSERT_OK(
        session.Execute("INSERT INTO T VALUES (1, 10), (2, 20);").status());
    SVC_ASSERT_OK(session.Execute("REFRESH ALL;").status());
    SVC_ASSERT_OK(
        session.Execute("CREATE MATERIALIZED VIEW V AS SELECT a, b FROM T;")
            .status());
    SVC_ASSERT_OK(session.Execute("INSERT INTO T VALUES (3, 30);").status());
    SVC_ASSERT_OK_AND_ASSIGN(SqlResult stats, session.Execute("SHOW STATS;"));
    ASSERT_EQ(stats.rows.NumRows(), 1u);
    before = stats.rows.row(0)[6].AsInt();
    EXPECT_GT(before, 0);
    SVC_ASSERT_OK(session.Execute("CHECKPOINT;").status());
  }
  {
    // Reopen from the checkpoint alone: the counter is the persisted one,
    // not a recount of the re-ingested pending rows.
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    SqlSession session(eng);
    SVC_ASSERT_OK_AND_ASSIGN(SqlResult stats, session.Execute("SHOW STATS;"));
    EXPECT_EQ(stats.rows.row(0)[6].AsInt(), before);
    // Queue another logged commit so the next open replays a WAL tail.
    SVC_ASSERT_OK(session.Execute("INSERT INTO T VALUES (4, 40);").status());
  }
  {
    // Checkpoint + WAL replay: the counter continues from the persisted
    // value instead of restarting.
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    SqlSession session(eng);
    SVC_ASSERT_OK_AND_ASSIGN(SqlResult stats, session.Execute("SHOW STATS;"));
    EXPECT_GT(stats.rows.row(0)[6].AsInt(), before);
  }
}

TEST_F(RecoveryTest, MaintenancePolicyReplaysFromWalAndCheckpoint) {
  MaintenancePolicyConfig cfg;
  cfg.mode = MaintenancePolicyConfig::Mode::kAuto;
  cfg.budget = 0.02;
  cfg.sla_ms = 250;
  cfg.tick_ms = 10;
  cfg.ratio = 0.2;
  {
    DurableOptions o;
    o.data_dir = dir_;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
    SqlSession session(eng);
    SVC_ASSERT_OK(
        session.Execute("CREATE TABLE T (a INT, PRIMARY KEY (a));").status());
    SVC_ASSERT_OK(session
                      .Execute("SET MAINTENANCE POLICY (mode=auto, "
                               "budget=0.02, sla_ms=250, tick_ms=10, "
                               "ratio=0.2);")
                      .status());
  }
  {
    // No checkpoint was taken: the policy came back from the WAL alone.
    DurableOptions o;
    o.data_dir = dir_;
    RecoveryReport report;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
    EXPECT_EQ(report.wal_records_replayed, 2u);
    EXPECT_TRUE(eng->shared()->maintenance_policy() == cfg);
    SVC_ASSERT_OK(eng->Checkpoint().status());
  }
  {
    // And from the checkpoint alone (its WAL is empty after rotation).
    DurableOptions o;
    o.data_dir = dir_;
    RecoveryReport report;
    SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
    EXPECT_EQ(report.wal_records_replayed, 0u);
    EXPECT_TRUE(eng->shared()->maintenance_policy() == cfg);
  }
}

TEST_F(RecoveryTest, IncrementalCheckpointSkipsUnchangedTables) {
  DurableOptions o;
  o.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o));
  SqlSession session(eng);
  SVC_ASSERT_OK(
      session.Execute("CREATE TABLE T (a INT, b INT, PRIMARY KEY (a));")
          .status());
  SVC_ASSERT_OK(
      session.Execute("CREATE TABLE U (a INT, PRIMARY KEY (a));").status());
  SVC_ASSERT_OK(
      session.Execute("INSERT INTO T VALUES (1, 10), (2, 20);").status());
  SVC_ASSERT_OK(session.Execute("REFRESH ALL;").status());
  SVC_ASSERT_OK(
      session.Execute("CREATE MATERIALIZED VIEW V AS SELECT a, b FROM T;")
          .status());

  // First checkpoint: everything is new — three tables serialized, none
  // reused.
  SVC_ASSERT_OK(eng->Checkpoint().status());
  EXPECT_EQ(eng->stats().checkpoint_tables_encoded, 3u);
  EXPECT_EQ(eng->stats().checkpoint_tables_reused, 0u);

  // Unchanged state: re-checkpointing re-serializes nothing (copy-on-write
  // identity pins every table's contents).
  SVC_ASSERT_OK(eng->Checkpoint().status());
  EXPECT_EQ(eng->stats().checkpoint_tables_encoded, 0u);
  EXPECT_EQ(eng->stats().checkpoint_tables_reused, 3u);

  // A refresh that commits rows into T rebuilds T and V but not U.
  SVC_ASSERT_OK(session.Execute("INSERT INTO T VALUES (3, 30);").status());
  SVC_ASSERT_OK(session.Execute("REFRESH ALL;").status());
  SVC_ASSERT_OK(eng->Checkpoint().status());
  EXPECT_EQ(eng->stats().checkpoint_tables_encoded, 2u);
  EXPECT_EQ(eng->stats().checkpoint_tables_reused, 1u);

  // The cache is a pure serialization shortcut: cached and uncached
  // encodings of the same snapshot are byte-identical, and the recovered
  // engine is bit-identical to the live one.
  const SvcEngine& live = eng->shared()->Snapshot()->engine;
  const uint64_t epoch = eng->epoch();
  std::string uncached;
  SVC_ASSERT_OK(EncodeEngineState(live, epoch, &uncached));
  TableEncodeCache warm;
  std::string cold_pass, warmed;
  SVC_ASSERT_OK(EncodeEngineState(live, epoch, &cold_pass, &warm));
  SVC_ASSERT_OK(EncodeEngineState(live, epoch, &warmed, &warm));
  EXPECT_TRUE(cold_pass == uncached);
  EXPECT_TRUE(warmed == uncached);
  EXPECT_EQ(warm.tables_reused, 3u);

  DurableOptions o2;
  o2.data_dir = dir_;
  SVC_ASSERT_OK_AND_ASSIGN(auto reopened, DurableEngine::Open(o2));
  std::string recovered;
  SVC_ASSERT_OK(EncodeEngineState(reopened->shared()->Snapshot()->engine,
                                  epoch, &recovered));
  EXPECT_TRUE(recovered == uncached);
}

// ---- The kill-and-recover differential matrix ------------------------------
//
// For every crash site and seed: fork a child that arms the injector and
// runs the workload; the injected crash _exits with kCrashExitCode at the
// armed site. The parent recovers the directory, checks the recovered
// epoch is exactly what the site's durability semantics promise, and
// bit-diffs state + answers against a never-crashed in-memory replica of
// the same commit prefix.

struct CrashCase {
  const char* site;
  uint64_t nth;
  /// Expected recovered epoch. kWalNth-based sites: the Nth logged commit
  /// was interrupted; whether its record survives depends on the site.
  uint64_t expected_epoch;
};

constexpr uint64_t kWalNth = 7;

const CrashCase kCrashMatrix[] = {
    // Crash before any byte of commit N's record: N-1 commits survive.
    {"wal.append.pre", kWalNth, kWalNth - 1},
    // Crash after half of commit N's frame: torn tail, N-1 commits.
    {"wal.append.torn", kWalNth, kWalNth - 1},
    // Record durable, crash before publish: recovery surfaces commit N —
    // write-ahead means durable-but-unpublished work may complete.
    {"wal.append.post", kWalNth, kWalNth},
    // Mid-checkpoint crashes: the temp file (whole or torn) is discarded;
    // every commit before the checkpoint was WAL-durable.
    {"ckpt.tear", 1, kCkptAfter + 1},
    {"ckpt.pre_rename", 1, kCkptAfter + 1},
    // Checkpoint renamed into place, crash before WAL rotation: recovery
    // uses the new checkpoint (its WAL is simply absent).
    {"ckpt.post_rename", 1, kCkptAfter + 1},
};

TEST_F(RecoveryTest, KillAndRecoverDifferentialMatrix) {
  for (const CrashCase& c : kCrashMatrix) {
    for (uint64_t seed : {1, 2, 3}) {
      const std::string dir =
          dir_ + "/" + c.site + "-" + std::to_string(seed);
      std::filesystem::create_directories(dir);
      const std::vector<DurableOp> ops =
          MakeWorkloadOps(seed, kWorkloadSteps);

      const pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        // Child: arm and run until the injected crash. No gtest macros
        // here — failures exit with distinct codes.
        FaultInjector::Global().Arm(c.site, c.nth);
        RunWorkloadOrExit(dir, ops);  // _exits; never returns
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus)) << c.site << " seed " << seed;
      ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode)
          << c.site << " seed " << seed
          << ": child exited " << WEXITSTATUS(wstatus)
          << " (0 means the armed site was never reached)";

      RecoveryReport report;
      DurableOptions o;
      o.data_dir = dir;
      SVC_ASSERT_OK_AND_ASSIGN(auto eng, DurableEngine::Open(o, &report));
      EXPECT_EQ(report.recovered_epoch, c.expected_epoch)
          << c.site << " seed " << seed << " (" << report.warning << ")";
      EXPECT_EQ(report.torn_tail, std::strcmp(c.site, "wal.append.torn") == 0)
          << c.site << " seed " << seed;

      SvcEngine replica = MakeReplica(ops, report.recovered_epoch);
      ExpectBitIdentical(eng->shared()->Snapshot()->engine, replica,
                         report.recovered_epoch);

      // The recovered directory must be fully usable: apply the rest of
      // the workload and land on the same final state as a replica that
      // never crashed at all.
      for (size_t i = report.recovered_epoch; i < ops.size(); ++i) {
        SVC_ASSERT_OK(eng->Apply(ops[i]));
      }
      ExpectBitIdentical(eng->shared()->Snapshot()->engine,
                         MakeReplica(ops, ops.size()), ops.size());
    }
  }
}

}  // namespace
}  // namespace svc
