#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/estimator.h"
#include "tests/test_util.h"

namespace svc {
namespace {

/// Builds a keyed single-group population table: (id, val, grp).
Table MakePopulation(const std::vector<double>& values, int64_t id_offset = 0,
                     const std::vector<int64_t>* groups = nullptr) {
  Table t(Schema({{"", "id", ValueType::kInt},
                  {"", "val", ValueType::kDouble},
                  {"", "grp", ValueType::kInt}}));
  EXPECT_TRUE(t.SetPrimaryKey({"id"}).ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(t.Insert({Value::Int(id_offset + static_cast<int64_t>(i)),
                          Value::Double(values[i]),
                          Value::Int(groups ? (*groups)[i]
                                            : static_cast<int64_t>(i % 5))})
                    .ok());
  }
  return t;
}

/// Hash-samples a keyed table (mirrors MaterializeStaleSample).
Table HashSample(const Table& t, double m, HashFamily f) {
  Table out(t.schema());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    if (HashInSample(t.EncodedKey(i), m, f)) out.AppendUnchecked(t.row(i));
  }
  EXPECT_TRUE(out.SetPrimaryKey(t.PrimaryKeyNames()).ok());
  return out;
}

CorrespondingSamples MakeSamples(const Table& stale, const Table& fresh,
                                 double m,
                                 HashFamily f = HashFamily::kFnv1a) {
  CorrespondingSamples s;
  s.ratio = m;
  s.family = f;
  s.key_columns = {"id"};
  s.stale = HashSample(stale, m, f);
  s.fresh = HashSample(fresh, m, f);
  return s;
}

TEST(ExactAggregateTest, AllFunctions) {
  Table t = MakePopulation({1, 2, 3, 4, 100});
  SVC_ASSERT_OK_AND_ASSIGN(
      double sum, ExactAggregate(t, AggregateQuery::Sum(Expr::Col("val"))));
  EXPECT_DOUBLE_EQ(sum, 110);
  SVC_ASSERT_OK_AND_ASSIGN(double cnt,
                           ExactAggregate(t, AggregateQuery::Count()));
  EXPECT_DOUBLE_EQ(cnt, 5);
  SVC_ASSERT_OK_AND_ASSIGN(
      double avg, ExactAggregate(t, AggregateQuery::Avg(Expr::Col("val"))));
  EXPECT_DOUBLE_EQ(avg, 22);
  SVC_ASSERT_OK_AND_ASSIGN(
      double med,
      ExactAggregate(t, AggregateQuery::Median(Expr::Col("val"))));
  EXPECT_DOUBLE_EQ(med, 3);
}

TEST(ExactAggregateTest, PredicateRestricts) {
  Table t = MakePopulation({1, 2, 3, 4, 100});
  AggregateQuery q = AggregateQuery::Sum(
      Expr::Col("val"), Expr::Lt(Expr::Col("val"), Expr::LitDouble(10)));
  SVC_ASSERT_OK_AND_ASSIGN(double sum, ExactAggregate(t, q));
  EXPECT_DOUBLE_EQ(sum, 10);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.95), 1.9600, 5e-4);
  EXPECT_NEAR(NormalQuantile(0.99), 2.5758, 5e-4);
  EXPECT_NEAR(NormalQuantile(0.90), 1.6449, 5e-4);
}

class AqpAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(AqpAccuracyTest, SumEstimateNearTruthAndCovered) {
  const double m = GetParam();
  Rng rng(31);
  std::vector<double> vals;
  for (int i = 0; i < 5000; ++i) vals.push_back(rng.Uniform(0, 10));
  Table pop = MakePopulation(vals);
  CorrespondingSamples s = MakeSamples(pop, pop, m);
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(pop, q));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcAqpEstimate(s, q));
  EXPECT_TRUE(e.has_ci);
  EXPECT_NEAR(e.value, truth, truth * 0.25) << "m=" << m;
  EXPECT_LE(e.ci_low, e.value);
  EXPECT_GE(e.ci_high, e.value);
}

INSTANTIATE_TEST_SUITE_P(Ratios, AqpAccuracyTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5));

TEST(AqpCoverageTest, ConfidenceIntervalCovers95Percent) {
  // Property: over many disjoint key universes (fresh hash draws), the 95%
  // CI should cover the truth ~95% of the time. This validates the
  // Horvitz–Thompson variance under the deterministic hash design.
  Rng rng(77);
  int covered = 0;
  const int trials = 120;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> vals;
    for (int i = 0; i < 1500; ++i) vals.push_back(rng.Uniform(0, 5));
    Table pop = MakePopulation(vals, /*id_offset=*/t * 1000000);
    CorrespondingSamples s = MakeSamples(pop, pop, 0.1);
    AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
    SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(pop, q));
    SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcAqpEstimate(s, q));
    if (e.Covers(truth)) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GE(rate, 0.86);  // generous slack: 120 Bernoulli(0.95) trials
}

TEST(AqpCoverageTest, CountCoverage) {
  Rng rng(79);
  int covered = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> vals;
    for (int i = 0; i < 1200; ++i) vals.push_back(rng.Uniform(0, 5));
    Table pop = MakePopulation(vals, t * 1000000);
    CorrespondingSamples s = MakeSamples(pop, pop, 0.15);
    AggregateQuery q = AggregateQuery::Count(
        Expr::Gt(Expr::Col("val"), Expr::LitDouble(2.5)));
    SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(pop, q));
    SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcAqpEstimate(s, q));
    if (e.Covers(truth)) ++covered;
  }
  EXPECT_GE(covered, 85);
}

TEST(AqpTest, AvgEstimate) {
  Rng rng(83);
  std::vector<double> vals;
  for (int i = 0; i < 4000; ++i) vals.push_back(rng.Gaussian() * 2 + 10);
  Table pop = MakePopulation(vals);
  CorrespondingSamples s = MakeSamples(pop, pop, 0.2);
  AggregateQuery q = AggregateQuery::Avg(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(pop, q));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcAqpEstimate(s, q));
  EXPECT_NEAR(e.value, truth, 0.5);
  EXPECT_TRUE(e.has_ci);
}

TEST(AqpTest, MedianBootstrapInterval) {
  Rng rng(89);
  std::vector<double> vals;
  for (int i = 0; i < 3000; ++i) vals.push_back(rng.Exponential(0.2));
  Table pop = MakePopulation(vals);
  CorrespondingSamples s = MakeSamples(pop, pop, 0.2);
  AggregateQuery q = AggregateQuery::Median(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(pop, q));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcAqpEstimate(s, q));
  EXPECT_TRUE(e.has_ci);
  EXPECT_LT(e.ci_low, e.ci_high);
  EXPECT_NEAR(e.value, truth, 1.0);
}

TEST(CorrTest, NoChangeMeansExactAnswer) {
  // When the view did not change, the correction is exactly zero and
  // SVC+CORR returns the exact stale (= fresh) answer with zero width.
  Rng rng(97);
  std::vector<double> vals;
  for (int i = 0; i < 2000; ++i) vals.push_back(rng.Uniform(0, 9));
  Table pop = MakePopulation(vals);
  CorrespondingSamples s = MakeSamples(pop, pop, 0.1);
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(pop, q));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcCorrEstimate(pop, s, q));
  EXPECT_DOUBLE_EQ(e.value, truth);
  EXPECT_NEAR(e.HalfWidth(), 0.0, 1e-9);
}

/// Builds a stale/fresh pair: `fresh` modifies a fraction of rows, adds
/// rows, deletes rows.
struct StaleFresh {
  Table stale;
  Table fresh;
};

StaleFresh MakeStaleFresh(Rng* rng, int n, double update_frac,
                          double insert_frac, double delete_frac) {
  std::vector<double> vals;
  for (int i = 0; i < n; ++i) vals.push_back(rng->Uniform(0, 10));
  StaleFresh out;
  out.stale = MakePopulation(vals);
  std::vector<double> fresh_vals;
  Table fresh(out.stale.schema());
  EXPECT_TRUE(fresh.SetPrimaryKey({"id"}).ok());
  for (int i = 0; i < n; ++i) {
    if (rng->Bernoulli(delete_frac)) continue;  // deleted
    double v = vals[i];
    if (rng->Bernoulli(update_frac)) v = rng->Uniform(0, 10);  // updated
    EXPECT_TRUE(fresh
                    .Insert({Value::Int(i), Value::Double(v),
                             Value::Int(i % 5)})
                    .ok());
  }
  const int extra = static_cast<int>(n * insert_frac);
  for (int i = 0; i < extra; ++i) {
    EXPECT_TRUE(fresh
                    .Insert({Value::Int(n + i),
                             Value::Double(rng->Uniform(0, 10)),
                             Value::Int(i % 5)})
                    .ok());
  }
  out.fresh = std::move(fresh);
  return out;
}

TEST(CorrTest, CorrectionTracksTruthUnderMixedChanges) {
  Rng rng(101);
  StaleFresh sf = MakeStaleFresh(&rng, 4000, 0.05, 0.08, 0.03);
  CorrespondingSamples s = MakeSamples(sf.stale, sf.fresh, 0.15);
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(sf.fresh, q));
  SVC_ASSERT_OK_AND_ASSIGN(double stale_ans, ExactAggregate(sf.stale, q));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate corr, SvcCorrEstimate(sf.stale, s, q));
  // The correction must beat the stale answer.
  EXPECT_LT(std::fabs(corr.value - truth), std::fabs(stale_ans - truth));
}

TEST(CorrTest, CoverageUnderChanges) {
  Rng rng(103);
  int covered = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    StaleFresh sf = MakeStaleFresh(&rng, 1200, 0.08, 0.10, 0.04);
    // Shift ids so each trial gets a fresh hash draw.
    CorrespondingSamples s = MakeSamples(sf.stale, sf.fresh, 0.15,
                                         t % 2 ? HashFamily::kFnv1a
                                               : HashFamily::kSha1);
    AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
    SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(sf.fresh, q));
    SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcCorrEstimate(sf.stale, s, q));
    if (e.Covers(truth)) ++covered;
  }
  EXPECT_GE(covered, 85);
}

TEST(CorrTest, CorrBeatsAqpWhenStalenessIsLight) {
  // §5.2.2: when few rows changed, the correction's variance is far lower
  // than the direct estimate's. Check interval widths.
  Rng rng(107);
  StaleFresh sf = MakeStaleFresh(&rng, 5000, 0.02, 0.02, 0.0);
  CorrespondingSamples s = MakeSamples(sf.stale, sf.fresh, 0.1);
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate aqp, SvcAqpEstimate(s, q));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate corr, SvcCorrEstimate(sf.stale, s, q));
  EXPECT_LT(corr.HalfWidth(), aqp.HalfWidth() / 2);
}

TEST(CorrTest, AvgCorrection) {
  Rng rng(109);
  StaleFresh sf = MakeStaleFresh(&rng, 3000, 0.1, 0.1, 0.05);
  CorrespondingSamples s = MakeSamples(sf.stale, sf.fresh, 0.2);
  AggregateQuery q = AggregateQuery::Avg(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(sf.fresh, q));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate e, SvcCorrEstimate(sf.stale, s, q));
  EXPECT_NEAR(e.value, truth, 0.4);
}

TEST(GroupedTest, ExactGroupedMatchesPerGroupScan) {
  Rng rng(113);
  std::vector<double> vals;
  std::vector<int64_t> grps;
  for (int i = 0; i < 1000; ++i) {
    vals.push_back(rng.Uniform(0, 10));
    grps.push_back(rng.UniformInt(0, 3));
  }
  Table pop = MakePopulation(vals, 0, &grps);
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(GroupedResult g,
                           ExactAggregateGrouped(pop, {"grp"}, q));
  EXPECT_EQ(g.group_keys.size(), 4u);
  for (size_t i = 0; i < g.group_keys.size(); ++i) {
    const int64_t grp = g.group_keys[i][0].AsInt();
    AggregateQuery qq = AggregateQuery::Sum(
        Expr::Col("val"), Expr::Eq(Expr::Col("grp"), Expr::LitInt(grp)));
    SVC_ASSERT_OK_AND_ASSIGN(double want, ExactAggregate(pop, qq));
    EXPECT_DOUBLE_EQ(g.estimates[i].value, want);
  }
}

TEST(GroupedTest, AqpGroupedNearExact) {
  Rng rng(127);
  std::vector<double> vals;
  std::vector<int64_t> grps;
  for (int i = 0; i < 8000; ++i) {
    vals.push_back(rng.Uniform(0, 10));
    grps.push_back(rng.UniformInt(0, 3));
  }
  Table pop = MakePopulation(vals, 0, &grps);
  CorrespondingSamples s = MakeSamples(pop, pop, 0.2);
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(GroupedResult est,
                           SvcAqpEstimateGrouped(s, {"grp"}, q));
  SVC_ASSERT_OK_AND_ASSIGN(GroupedResult want,
                           ExactAggregateGrouped(pop, {"grp"}, q));
  for (size_t i = 0; i < want.group_keys.size(); ++i) {
    Row gk = want.group_keys[i];
    std::string key = EncodeRowKey(gk, {0});
    const Estimate* e = est.Find(key);
    ASSERT_NE(e, nullptr);
    EXPECT_NEAR(e->value, want.estimates[i].value,
                want.estimates[i].value * 0.25);
  }
}

TEST(GroupedTest, CorrGroupedHandlesNewAndGoneGroups) {
  // Group 9 exists only in fresh; group 0 only in stale.
  Table stale(Schema({{"", "id", ValueType::kInt},
                      {"", "val", ValueType::kDouble},
                      {"", "grp", ValueType::kInt}}));
  Table fresh = stale;
  SVC_ASSERT_OK(stale.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(fresh.SetPrimaryKey({"id"}));
  Rng rng(131);
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.Uniform(0, 10);
    SVC_ASSERT_OK(stale.Insert({Value::Int(i), Value::Double(v),
                                Value::Int(i % 3)}));  // groups 0,1,2
    if (i % 3 != 0) {
      SVC_ASSERT_OK(fresh.Insert({Value::Int(i), Value::Double(v),
                                  Value::Int(i % 3)}));
    }
  }
  for (int i = 3000; i < 3600; ++i) {
    SVC_ASSERT_OK(fresh.Insert({Value::Int(i),
                                Value::Double(rng.Uniform(0, 10)),
                                Value::Int(9)}));
  }
  CorrespondingSamples s = MakeSamples(stale, fresh, 0.2);
  AggregateQuery q = AggregateQuery::Count();
  SVC_ASSERT_OK_AND_ASSIGN(GroupedResult est,
                           SvcCorrEstimateGrouped(stale, s, {"grp"}, q));
  SVC_ASSERT_OK_AND_ASSIGN(GroupedResult want,
                           ExactAggregateGrouped(fresh, {"grp"}, q));
  // New group 9: ~600.
  Row g9 = {Value::Int(9)};
  const Estimate* e9 = est.Find(EncodeRowKey(g9, {0}));
  ASSERT_NE(e9, nullptr);
  EXPECT_NEAR(e9->value, 600, 200);
  // Gone group 0: estimate near zero.
  Row g0 = {Value::Int(0)};
  const Estimate* e0 = est.Find(EncodeRowKey(g0, {0}));
  ASSERT_NE(e0, nullptr);
  EXPECT_NEAR(e0->value, 0, 220);
}

}  // namespace
}  // namespace svc
