// Statistical coverage of SVC confidence intervals (ISSUE 4): the paper's
// §5 guarantee — the CI attached to an SVC estimate contains the true
// (fully maintained) answer with at least the nominal probability — gets a
// direct empirical test: ≥200 independent seeded trials per estimator,
// each with freshly randomized data and deltas, counting how often
// Estimate::Covers(truth) holds.
//
// The sampling operator η is deterministic given the data (that is the
// paper's design), so trial-to-trial randomness comes from the data and
// delta generation; each trial's truth is computed from the fully
// maintained view (ComputeFreshView), never from the estimator under test.
//
// Thresholds: with 200 trials at nominal 95%, the binomial sd is ~1.5%, so
// a true-coverage-at-nominal estimator fails a ≥90% assertion with
// probability < 1e-3 (3+ sd). CLT intervals (sum/count) and bootstrap
// percentile intervals (median) are both given the same floor.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sharded_engine.h"
#include "core/svc.h"
#include "sql/planner.h"
#include "tests/test_util.h"

namespace svc {
namespace {

constexpr int kTrials = 200;
constexpr double kNominal = 0.95;
constexpr double kFloor = 0.90;  // ~3.2 binomial sd below nominal

constexpr char kTrialViewSql[] = "SELECT id, g, v FROM F WHERE v >= 0";

/// One trial's randomized workload, shared by the unsharded and sharded
/// runs so the sharded engine is measured on the same data distribution
/// (and each sharded trial's truth comes from an unsharded replica).
struct TrialData {
  std::vector<Row> committed;  // initial F rows, in insertion order
  std::vector<Row> inserts;    // stale delta inserts
  std::vector<Row> deletes;    // stale delta deletes (deduped full rows)
};

TrialData GenerateTrial(uint64_t seed) {
  Rng rng(seed);
  TrialData data;
  const int64_t n = 260;
  for (int64_t id = 0; id < n; ++id) {
    // Skewed-ish positive values: a mix of a uniform body and occasional
    // large values, so the CI actually has work to do.
    double v = rng.Uniform(0.0, 10.0);
    if (rng.UniformInt(0, 9) == 0) v += rng.Uniform(20.0, 60.0);
    data.committed.push_back({Value::Int(id), Value::Int(rng.UniformInt(1, 8)),
                              Value::Double(v)});
  }
  // Stale deltas: 30–70 inserts with fresh ids, 10–30 deletes.
  int64_t next_id = n;
  const int64_t n_ins = rng.UniformInt(30, 70);
  for (int64_t i = 0; i < n_ins; ++i) {
    double v = rng.Uniform(0.0, 10.0);
    if (rng.UniformInt(0, 9) == 0) v += rng.Uniform(20.0, 60.0);
    data.inserts.push_back({Value::Int(next_id++),
                            Value::Int(rng.UniformInt(1, 8)),
                            Value::Double(v)});
  }
  const int64_t n_del = rng.UniformInt(10, 30);
  // Deduplicate: a row queued for deletion twice would corrupt the change
  // table (same rule the SQL session enforces).
  std::vector<int64_t> seen;
  for (int64_t i = 0; i < n_del; ++i) {
    const int64_t id = rng.UniformInt(0, n - 1);
    bool dup = false;
    for (int64_t s : seen) dup = dup || s == id;
    if (dup) continue;
    seen.push_back(id);
    data.deletes.push_back(data.committed[static_cast<size_t>(id)]);
  }
  return data;
}

Table CommittedFact(const TrialData& data) {
  Table fact(Schema({{"", "id", ValueType::kInt},
                     {"", "g", ValueType::kInt},
                     {"", "v", ValueType::kDouble}}));
  EXPECT_TRUE(fact.SetPrimaryKey({"id"}).ok());
  for (const Row& r : data.committed) EXPECT_TRUE(fact.Insert(r).ok());
  return fact;
}

/// One trial's engine: F(id, g, v) with randomized rows, an SPJ view over
/// it (one view row per base row, so samples are sized by ratio × rows),
/// and a randomized stale delta batch (inserts + deletes).
SvcEngine BuildTrialEngine(const TrialData& data) {
  Database db;
  EXPECT_TRUE(db.CreateTable("F", CommittedFact(data)).ok());
  SvcEngine engine(std::move(db));
  PlanPtr def = SqlToPlan(kTrialViewSql, *engine.db()).value();
  EXPECT_TRUE(engine.CreateView("V", std::move(def)).ok());
  for (const Row& r : data.inserts) {
    EXPECT_TRUE(engine.InsertRecord("F", r).ok());
  }
  for (const Row& r : data.deletes) {
    EXPECT_TRUE(engine.DeleteRecord("F", r).ok());
  }
  return engine;
}

/// The same trial on a scatter-gather engine: F hash-partitioned by the
/// view's sampling key (id), deltas routed to their owning shards.
std::unique_ptr<ShardedEngine> BuildShardedTrialEngine(const TrialData& data,
                                                       int shards) {
  auto engine = std::make_unique<ShardedEngine>(Database(), shards);
  EXPECT_TRUE(engine->CreateTable("F", CommittedFact(data)).ok());
  PlanPtr def =
      SqlToPlan(kTrialViewSql,
                engine->Snapshot()->shards[0]->engine.db())
          .value();
  EXPECT_TRUE(engine->CreateView("V", std::move(def)).ok());
  EXPECT_TRUE(engine->InsertRows("F", data.inserts).ok());
  EXPECT_TRUE(engine->DeleteRows("F", data.deletes).ok());
  return engine;
}

/// Runs `trials` seeded trials of `q` and returns the fraction whose CI
/// covered the fully-maintained answer.
double MeasureCoverage(const AggregateQuery& q, EstimatorMode mode,
                       double ratio, int trials) {
  int covered = 0;
  int with_ci = 0;
  for (int t = 0; t < trials; ++t) {
    SCOPED_TRACE("trial seed=" + std::to_string(t));
    const TrialData data =
        GenerateTrial(0xc0ffee00u + static_cast<uint64_t>(t));
    SvcEngine engine = BuildTrialEngine(data);
    auto fresh = engine.ComputeFreshView("V");
    EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
    if (!fresh.ok()) continue;
    auto truth = ExactAggregate(*fresh, q);
    EXPECT_TRUE(truth.ok()) << truth.status().ToString();
    if (!truth.ok()) continue;
    SvcQueryOptions opts;
    opts.ratio = ratio;
    opts.mode = mode;
    auto ans = engine.Query("V", q, opts);
    EXPECT_TRUE(ans.ok()) << ans.status().ToString();
    if (!ans.ok()) continue;
    const Estimate& est = ans->estimate;
    EXPECT_TRUE(est.has_ci) << "estimator produced no interval";
    if (!est.has_ci) continue;
    ++with_ci;
    if (est.Covers(*truth)) ++covered;
  }
  EXPECT_EQ(with_ci, trials);
  return with_ci == 0 ? 0.0
                      : static_cast<double>(covered) / with_ci;
}

/// The sharded analog: each trial's merged-sample CI is checked against
/// the truth computed on an unsharded replica of the same workload (the
/// sharded engine never sees the fully-maintained answer).
double MeasureShardedCoverage(const AggregateQuery& q, EstimatorMode mode,
                              double ratio, int trials, int shards) {
  int covered = 0;
  int with_ci = 0;
  for (int t = 0; t < trials; ++t) {
    SCOPED_TRACE("trial seed=" + std::to_string(t) +
                 " shards=" + std::to_string(shards));
    const TrialData data =
        GenerateTrial(0xc0ffee00u + static_cast<uint64_t>(t));
    SvcEngine replica = BuildTrialEngine(data);
    auto fresh = replica.ComputeFreshView("V");
    EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
    if (!fresh.ok()) continue;
    auto truth = ExactAggregate(*fresh, q);
    EXPECT_TRUE(truth.ok()) << truth.status().ToString();
    if (!truth.ok()) continue;
    std::unique_ptr<ShardedEngine> engine =
        BuildShardedTrialEngine(data, shards);
    SvcQueryOptions opts;
    opts.ratio = ratio;
    opts.mode = mode;
    auto ans = engine->Query(*engine->Snapshot(), "V", q, opts);
    EXPECT_TRUE(ans.ok()) << ans.status().ToString();
    if (!ans.ok()) continue;
    const Estimate& est = ans->estimate;
    EXPECT_TRUE(est.has_ci) << "estimator produced no interval";
    if (!est.has_ci) continue;
    ++with_ci;
    if (est.Covers(*truth)) ++covered;
  }
  EXPECT_EQ(with_ci, trials);
  return with_ci == 0 ? 0.0
                      : static_cast<double>(covered) / with_ci;
}

TEST(CoverageTest, AqpSumCltIntervalCoversTruthAtNominalRate) {
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("v"));
  const double cov = MeasureCoverage(q, EstimatorMode::kAqp, 0.3, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

TEST(CoverageTest, AqpCountCltIntervalCoversTruthAtNominalRate) {
  AggregateQuery q =
      AggregateQuery::Count(Expr::Gt(Expr::Col("v"), Expr::LitDouble(5.0)));
  const double cov = MeasureCoverage(q, EstimatorMode::kAqp, 0.3, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

TEST(CoverageTest, CorrSumIntervalCoversTruthAtNominalRate) {
  // CORR's CLT interval is on the *correction*, whose effective sample is
  // only the sampled delta-affected pairs (~ratio × #deltas), not the whole
  // clean sample. At ratio 0.3 that is ~15 skewed observations and the
  // normal approximation measurably under-covers (~84% here) — a
  // small-sample effect, not a variance bug (coverage climbs back to
  // nominal as the effective sample grows). Use ratio 0.6 so the guarantee
  // is tested in the regime where the paper's asymptotics apply.
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("v"));
  const double cov = MeasureCoverage(q, EstimatorMode::kCorr, 0.6, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

TEST(CoverageTest, MedianBootstrapIntervalCoversTruthAtNominalRate) {
  AggregateQuery q = AggregateQuery::Median(Expr::Col("v"));
  const double cov = MeasureCoverage(q, EstimatorMode::kAqp, 0.3, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

// ---- Sharded scatter-gather (§5 guarantee survives partitioning) -----------
//
// The merged per-shard samples feed the same estimators, so the intervals
// should cover at the same rate — but that only holds if partitioning by
// sampling key really preserves the η-sampling design (a routing bug that
// dropped or duplicated keys would show up here as under-coverage).

TEST(CoverageTest, ShardedAqpSumCoversTruthAtTwoAndFourShards) {
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("v"));
  for (int shards : {2, 4}) {
    const double cov =
        MeasureShardedCoverage(q, EstimatorMode::kAqp, 0.3, kTrials, shards);
    EXPECT_GE(cov, kFloor) << "nominal " << kNominal << " shards " << shards;
  }
}

TEST(CoverageTest, ShardedCorrSumCoversTruthAtTwoAndFourShards) {
  // Ratio 0.6 for the same small-sample reason as the unsharded CORR test.
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("v"));
  for (int shards : {2, 4}) {
    const double cov =
        MeasureShardedCoverage(q, EstimatorMode::kCorr, 0.6, kTrials, shards);
    EXPECT_GE(cov, kFloor) << "nominal " << kNominal << " shards " << shards;
  }
}

}  // namespace
}  // namespace svc
