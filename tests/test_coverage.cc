// Statistical coverage of SVC confidence intervals (ISSUE 4): the paper's
// §5 guarantee — the CI attached to an SVC estimate contains the true
// (fully maintained) answer with at least the nominal probability — gets a
// direct empirical test: ≥200 independent seeded trials per estimator,
// each with freshly randomized data and deltas, counting how often
// Estimate::Covers(truth) holds.
//
// The sampling operator η is deterministic given the data (that is the
// paper's design), so trial-to-trial randomness comes from the data and
// delta generation; each trial's truth is computed from the fully
// maintained view (ComputeFreshView), never from the estimator under test.
//
// Thresholds: with 200 trials at nominal 95%, the binomial sd is ~1.5%, so
// a true-coverage-at-nominal estimator fails a ≥90% assertion with
// probability < 1e-3 (3+ sd). CLT intervals (sum/count) and bootstrap
// percentile intervals (median) are both given the same floor.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/svc.h"
#include "sql/planner.h"
#include "tests/test_util.h"

namespace svc {
namespace {

constexpr int kTrials = 200;
constexpr double kNominal = 0.95;
constexpr double kFloor = 0.90;  // ~3.2 binomial sd below nominal

/// One trial's engine: F(id, g, v) with randomized rows, an SPJ view over
/// it (one view row per base row, so samples are sized by ratio × rows),
/// and a randomized stale delta batch (inserts + deletes).
SvcEngine BuildTrialEngine(uint64_t seed) {
  Rng rng(seed);
  Database db;
  Table fact(Schema({{"", "id", ValueType::kInt},
                     {"", "g", ValueType::kInt},
                     {"", "v", ValueType::kDouble}}));
  EXPECT_TRUE(fact.SetPrimaryKey({"id"}).ok());
  const int64_t n = 260;
  for (int64_t id = 0; id < n; ++id) {
    // Skewed-ish positive values: a mix of a uniform body and occasional
    // large values, so the CI actually has work to do.
    double v = rng.Uniform(0.0, 10.0);
    if (rng.UniformInt(0, 9) == 0) v += rng.Uniform(20.0, 60.0);
    EXPECT_TRUE(
        fact.Insert({Value::Int(id), Value::Int(rng.UniformInt(1, 8)),
                     Value::Double(v)})
            .ok());
  }
  EXPECT_TRUE(db.CreateTable("F", std::move(fact)).ok());
  SvcEngine engine(std::move(db));
  PlanPtr def =
      SqlToPlan("SELECT id, g, v FROM F WHERE v >= 0", *engine.db()).value();
  EXPECT_TRUE(engine.CreateView("V", std::move(def)).ok());

  // Stale deltas: 30–70 inserts with fresh ids, 10–30 deletes.
  int64_t next_id = n;
  const int64_t n_ins = rng.UniformInt(30, 70);
  for (int64_t i = 0; i < n_ins; ++i) {
    double v = rng.Uniform(0.0, 10.0);
    if (rng.UniformInt(0, 9) == 0) v += rng.Uniform(20.0, 60.0);
    EXPECT_TRUE(engine
                    .InsertRecord("F", {Value::Int(next_id++),
                                        Value::Int(rng.UniformInt(1, 8)),
                                        Value::Double(v)})
                    .ok());
  }
  const int64_t n_del = rng.UniformInt(10, 30);
  const Table* base = engine.db()->GetTable("F").value();
  std::vector<Row> doomed;
  for (int64_t i = 0; i < n_del; ++i) {
    const int64_t id = rng.UniformInt(0, n - 1);
    auto found = base->FindByEncodedKey(
        EncodeRowKey({Value::Int(id)}, std::vector<size_t>{0}));
    if (!found.ok()) continue;
    doomed.push_back(base->row(*found));
  }
  // Deduplicate: a row queued for deletion twice would corrupt the change
  // table (same rule the SQL session enforces).
  std::vector<std::string> seen;
  for (const Row& r : doomed) {
    std::string key = r[0].ToString();
    bool dup = false;
    for (const std::string& s : seen) dup = dup || s == key;
    if (dup) continue;
    seen.push_back(std::move(key));
    EXPECT_TRUE(engine.DeleteRecord("F", r).ok());
  }
  return engine;
}

/// Runs `trials` seeded trials of `q` and returns the fraction whose CI
/// covered the fully-maintained answer.
double MeasureCoverage(const AggregateQuery& q, EstimatorMode mode,
                       double ratio, int trials) {
  int covered = 0;
  int with_ci = 0;
  for (int t = 0; t < trials; ++t) {
    SCOPED_TRACE("trial seed=" + std::to_string(t));
    SvcEngine engine = BuildTrialEngine(0xc0ffee00u + static_cast<uint64_t>(t));
    auto fresh = engine.ComputeFreshView("V");
    EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
    if (!fresh.ok()) continue;
    auto truth = ExactAggregate(*fresh, q);
    EXPECT_TRUE(truth.ok()) << truth.status().ToString();
    if (!truth.ok()) continue;
    SvcQueryOptions opts;
    opts.ratio = ratio;
    opts.mode = mode;
    auto ans = engine.Query("V", q, opts);
    EXPECT_TRUE(ans.ok()) << ans.status().ToString();
    if (!ans.ok()) continue;
    const Estimate& est = ans->estimate;
    EXPECT_TRUE(est.has_ci) << "estimator produced no interval";
    if (!est.has_ci) continue;
    ++with_ci;
    if (est.Covers(*truth)) ++covered;
  }
  EXPECT_EQ(with_ci, trials);
  return with_ci == 0 ? 0.0
                      : static_cast<double>(covered) / with_ci;
}

TEST(CoverageTest, AqpSumCltIntervalCoversTruthAtNominalRate) {
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("v"));
  const double cov = MeasureCoverage(q, EstimatorMode::kAqp, 0.3, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

TEST(CoverageTest, AqpCountCltIntervalCoversTruthAtNominalRate) {
  AggregateQuery q =
      AggregateQuery::Count(Expr::Gt(Expr::Col("v"), Expr::LitDouble(5.0)));
  const double cov = MeasureCoverage(q, EstimatorMode::kAqp, 0.3, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

TEST(CoverageTest, CorrSumIntervalCoversTruthAtNominalRate) {
  // CORR's CLT interval is on the *correction*, whose effective sample is
  // only the sampled delta-affected pairs (~ratio × #deltas), not the whole
  // clean sample. At ratio 0.3 that is ~15 skewed observations and the
  // normal approximation measurably under-covers (~84% here) — a
  // small-sample effect, not a variance bug (coverage climbs back to
  // nominal as the effective sample grows). Use ratio 0.6 so the guarantee
  // is tested in the regime where the paper's asymptotics apply.
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("v"));
  const double cov = MeasureCoverage(q, EstimatorMode::kCorr, 0.6, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

TEST(CoverageTest, MedianBootstrapIntervalCoversTruthAtNominalRate) {
  AggregateQuery q = AggregateQuery::Median(Expr::Col("v"));
  const double cov = MeasureCoverage(q, EstimatorMode::kAqp, 0.3, kTrials);
  EXPECT_GE(cov, kFloor) << "nominal " << kNominal;
}

}  // namespace
}  // namespace svc
