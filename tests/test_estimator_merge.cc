// Scatter-gather sample merging (core/estimator_merge.h): the property the
// sharded engine's bit-identity rests on. Per-shard corresponding samples —
// partitioned by sampling-key hash, so every key's rows live on exactly one
// shard — merge into one canonically-ordered sample that is bitwise
// identical at every shard count, and the stock estimators run over the
// merged sample produce bit-identical estimates to the unsharded engine
// running over the same rows.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "core/estimator.h"
#include "core/estimator_merge.h"
#include "relational/algebra.h"
#include "sample/cleaner.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::EncodedRows;

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Asserts two tables are bitwise identical: same schema width, same row
/// count, same values in the same order (doubles compared by bit pattern
/// via the exact row encoding).
void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema().NumColumns(), b.schema().NumColumns());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  std::vector<size_t> all(a.schema().NumColumns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_EQ(EncodeRowKey(a.row(i), all), EncodeRowKey(b.row(i), all))
        << "row " << i;
  }
}

void ExpectEstimatesBitIdentical(const Estimate& a, const Estimate& b) {
  EXPECT_EQ(BitsOf(a.value), BitsOf(b.value));
  EXPECT_EQ(BitsOf(a.ci_low), BitsOf(b.ci_low));
  EXPECT_EQ(BitsOf(a.ci_high), BitsOf(b.ci_high));
  EXPECT_EQ(a.has_ci, b.has_ci);
  EXPECT_EQ(a.sample_rows, b.sample_rows);
}

constexpr double kRatio = 0.25;

Schema SampleSchema() {
  return Schema({{"", "sessionId", ValueType::kInt},
                 {"", "videoId", ValueType::kInt},
                 {"", "duration", ValueType::kDouble}});
}

/// A deterministic corresponding-sample pair over ~10 sampling keys
/// (videoId), several rows per key, with the fresh side differing from the
/// stale side the way cleaning does: some rows corrected, some gone, some
/// new. Dyadic durations make sum/avg exactly representable where the
/// exact-merge test needs it.
CorrespondingSamples MakeSample(int num_rows) {
  CorrespondingSamples s{Table(SampleSchema()), Table(SampleSchema()), kRatio,
                         HashFamily::kFnv1a, std::vector<std::string>{
                             "videoId"}};
  EXPECT_TRUE(s.stale.SetPrimaryKey({"sessionId"}).ok());
  EXPECT_TRUE(s.fresh.SetPrimaryKey({"sessionId"}).ok());
  for (int i = 0; i < num_rows; ++i) {
    const int64_t video = i % 10;
    const double dur = 0.25 * static_cast<double>(1 + i % 7);
    EXPECT_TRUE(s.stale
                    .Insert({Value::Int(i), Value::Int(video),
                             Value::Double(dur)})
                    .ok());
    if (i % 5 == 3) continue;  // superfluous row: absent from fresh
    const double fresh_dur = i % 3 == 0 ? dur + 0.5 : dur;  // corrected
    EXPECT_TRUE(s.fresh
                    .Insert({Value::Int(i), Value::Int(video),
                             Value::Double(fresh_dur)})
                    .ok());
  }
  // Missing rows entering at the fresh side only.
  for (int i = num_rows; i < num_rows + 4; ++i) {
    EXPECT_TRUE(s.fresh
                    .Insert({Value::Int(i), Value::Int(i % 10),
                             Value::Double(1.5)})
                    .ok());
  }
  return s;
}

/// Partitions one corresponding-sample pair into `n` shard-local pairs by
/// sampling-key hash — the sharded engine's routing rule — preserving each
/// shard's local row order (= the global order filtered to its keys).
std::vector<std::shared_ptr<const CorrespondingSamples>> PartitionByKey(
    const CorrespondingSamples& whole, size_t n) {
  std::vector<std::shared_ptr<CorrespondingSamples>> parts;
  for (size_t i = 0; i < n; ++i) {
    auto p = std::make_shared<CorrespondingSamples>();
    p->stale = Table(whole.stale.schema());
    p->fresh = Table(whole.fresh.schema());
    EXPECT_TRUE(p->stale.SetPrimaryKey(whole.stale.PrimaryKeyNames()).ok());
    EXPECT_TRUE(p->fresh.SetPrimaryKey(whole.fresh.PrimaryKeyNames()).ok());
    p->ratio = whole.ratio;
    p->family = whole.family;
    p->key_columns = whole.key_columns;
    parts.push_back(std::move(p));
  }
  const std::vector<size_t> key_idx =
      whole.stale.schema().ResolveAll(whole.key_columns).value();
  auto route = [&](const Table& side, auto append) {
    for (const Row& r : side.rows()) {
      append(*parts[KeyHash(EncodeRowKey(r, key_idx)) % n], r);
    }
  };
  route(whole.stale, [](CorrespondingSamples& p, const Row& r) {
    EXPECT_TRUE(p.stale.Insert(r).ok());
  });
  route(whole.fresh, [](CorrespondingSamples& p, const Row& r) {
    EXPECT_TRUE(p.fresh.Insert(r).ok());
  });
  std::vector<std::shared_ptr<const CorrespondingSamples>> out(parts.begin(),
                                                               parts.end());
  return out;
}

TEST(EstimatorMergeTest, MergeIsShardCountInvariant) {
  const CorrespondingSamples whole = MakeSample(40);
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples canonical,
      MergeCorrespondingSamples(
          {std::make_shared<const CorrespondingSamples>(whole)}));
  EXPECT_EQ(canonical.stale.NumRows(), whole.stale.NumRows());
  EXPECT_EQ(canonical.fresh.NumRows(), whole.fresh.NumRows());
  for (size_t n : {2u, 3u, 4u, 7u}) {
    SVC_ASSERT_OK_AND_ASSIGN(
        CorrespondingSamples merged,
        MergeCorrespondingSamples(PartitionByKey(whole, n)));
    SCOPED_TRACE("shards=" + std::to_string(n));
    ExpectTablesBitIdentical(merged.stale, canonical.stale);
    ExpectTablesBitIdentical(merged.fresh, canonical.fresh);
    EXPECT_EQ(merged.ratio, canonical.ratio);
    EXPECT_EQ(merged.family, canonical.family);
    EXPECT_EQ(merged.key_columns, canonical.key_columns);
  }
}

TEST(EstimatorMergeTest, MergedEstimatesMatchUnshardedOnSameRows) {
  const CorrespondingSamples whole = MakeSample(40);
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples canonical,
      MergeCorrespondingSamples(
          {std::make_shared<const CorrespondingSamples>(whole)}));
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples merged,
      MergeCorrespondingSamples(PartitionByKey(whole, 4)));

  // The full stale view for SVC+CORR: a superset of the stale sample.
  Table stale_view = Table(SampleSchema());
  ASSERT_TRUE(stale_view.SetPrimaryKey({"sessionId"}).ok());
  for (const Row& r : whole.stale.rows()) {
    ASSERT_TRUE(stale_view.Insert(r).ok());
  }
  for (int i = 1000; i < 1030; ++i) {
    ASSERT_TRUE(stale_view
                    .Insert({Value::Int(i), Value::Int(i % 10),
                             Value::Double(0.5 * (i % 4))})
                    .ok());
  }

  const AggregateQuery queries[] = {
      AggregateQuery::Count(),
      AggregateQuery::Sum(ParseScalarExpr("duration").value()),
      AggregateQuery::Avg(ParseScalarExpr("duration").value()),
      AggregateQuery::Median(ParseScalarExpr("duration").value()),
      AggregateQuery::Sum(ParseScalarExpr("duration").value(),
                          ParseScalarExpr("videoId < 5").value()),
  };
  for (const AggregateQuery& q : queries) {
    SCOPED_TRACE(q.ToString());
    SVC_ASSERT_OK_AND_ASSIGN(Estimate aqp_one, SvcAqpEstimate(canonical, q));
    SVC_ASSERT_OK_AND_ASSIGN(Estimate aqp_n, SvcAqpEstimate(merged, q));
    ExpectEstimatesBitIdentical(aqp_n, aqp_one);
    SVC_ASSERT_OK_AND_ASSIGN(Estimate corr_one,
                             SvcCorrEstimate(stale_view, canonical, q));
    SVC_ASSERT_OK_AND_ASSIGN(Estimate corr_n,
                             SvcCorrEstimate(stale_view, merged, q));
    ExpectEstimatesBitIdentical(corr_n, corr_one);
  }

  // Grouped: same groups in the same order, estimates bit-identical.
  const AggregateQuery avg =
      AggregateQuery::Avg(ParseScalarExpr("duration").value());
  SVC_ASSERT_OK_AND_ASSIGN(
      GroupedResult g_one,
      SvcAqpEstimateGrouped(canonical, {"videoId"}, avg));
  SVC_ASSERT_OK_AND_ASSIGN(GroupedResult g_n,
                           SvcAqpEstimateGrouped(merged, {"videoId"}, avg));
  ASSERT_EQ(g_n.group_keys.size(), g_one.group_keys.size());
  for (size_t i = 0; i < g_one.group_keys.size(); ++i) {
    EXPECT_TRUE(g_n.group_keys[i][0] == g_one.group_keys[i][0]);
    ExpectEstimatesBitIdentical(g_n.estimates[i], g_one.estimates[i]);
  }
}

TEST(EstimatorMergeTest, ExactSumCountAvgOnDyadicData) {
  // On dyadic values the scaled sum s·Σ is exact, so the merged estimate
  // must equal the hand-computed unsharded value — not just match bitwise.
  const CorrespondingSamples whole = MakeSample(40);
  double fresh_sum = 0.0;
  for (const Row& r : whole.fresh.rows()) fresh_sum += r[2].AsDouble();
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples merged,
      MergeCorrespondingSamples(PartitionByKey(whole, 4)));
  const AggregateQuery sum =
      AggregateQuery::Sum(ParseScalarExpr("duration").value());
  SVC_ASSERT_OK_AND_ASSIGN(Estimate est, SvcAqpEstimate(merged, sum));
  EXPECT_EQ(BitsOf(est.value), BitsOf(fresh_sum / kRatio));
  SVC_ASSERT_OK_AND_ASSIGN(Estimate cnt,
                           SvcAqpEstimate(merged, AggregateQuery::Count()));
  EXPECT_EQ(BitsOf(cnt.value),
            BitsOf(static_cast<double>(whole.fresh.NumRows()) / kRatio));
  EXPECT_EQ(cnt.sample_rows, whole.fresh.NumRows());
}

TEST(EstimatorMergeTest, EmptyShardsDoNotPerturbTheMerge) {
  // Keys can hash to a strict subset of the shards; the empty shards'
  // empty samples must be identity elements of the merge.
  const CorrespondingSamples whole = MakeSample(24);
  auto parts = PartitionByKey(whole, 2);
  auto empty = std::make_shared<CorrespondingSamples>();
  empty->stale = Table(SampleSchema());
  empty->fresh = Table(SampleSchema());
  EXPECT_TRUE(empty->stale.SetPrimaryKey({"sessionId"}).ok());
  EXPECT_TRUE(empty->fresh.SetPrimaryKey({"sessionId"}).ok());
  empty->ratio = whole.ratio;
  empty->family = whole.family;
  empty->key_columns = whole.key_columns;
  auto padded = parts;
  padded.insert(padded.begin(), empty);
  padded.push_back(empty);
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples without,
                           MergeCorrespondingSamples(parts));
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples with,
                           MergeCorrespondingSamples(padded));
  ExpectTablesBitIdentical(with.stale, without.stale);
  ExpectTablesBitIdentical(with.fresh, without.fresh);

  // All shards empty: a valid zero-row sample, not an error.
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples none,
                           MergeCorrespondingSamples({empty, empty}));
  EXPECT_EQ(none.stale.NumRows(), 0u);
  EXPECT_EQ(none.fresh.NumRows(), 0u);
}

TEST(EstimatorMergeTest, SingleKeyShardPreservesWithinKeyOrder) {
  // All rows carry one sampling key, so exactly one shard owns everything
  // and the stable sort has nothing to reorder: the merged sample must be
  // the owning shard's rows verbatim, in their local (= global) order.
  CorrespondingSamples s{Table(SampleSchema()), Table(SampleSchema()), kRatio,
                         HashFamily::kFnv1a,
                         std::vector<std::string>{"videoId"}};
  ASSERT_TRUE(s.stale.SetPrimaryKey({"sessionId"}).ok());
  ASSERT_TRUE(s.fresh.SetPrimaryKey({"sessionId"}).ok());
  // Deliberately non-monotone sessionIds: a sort by primary key would
  // reorder them, a stable sort by the (constant) sampling key must not.
  for (int64_t id : {5, 2, 9, 1, 7}) {
    ASSERT_TRUE(s.stale
                    .Insert({Value::Int(id), Value::Int(42),
                             Value::Double(0.5)})
                    .ok());
    ASSERT_TRUE(s.fresh
                    .Insert({Value::Int(id), Value::Int(42),
                             Value::Double(1.0)})
                    .ok());
  }
  for (size_t n : {1u, 2u, 4u}) {
    SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples merged,
                             MergeCorrespondingSamples(PartitionByKey(s, n)));
    SCOPED_TRACE("shards=" + std::to_string(n));
    ExpectTablesBitIdentical(merged.stale, s.stale);
    ExpectTablesBitIdentical(merged.fresh, s.fresh);
  }
}

TEST(EstimatorMergeTest, MergeRejectsBadInputs) {
  EXPECT_FALSE(MergeCorrespondingSamples({}).ok());
  const CorrespondingSamples whole = MakeSample(12);
  auto parts = PartitionByKey(whole, 2);
  auto bad = std::make_shared<CorrespondingSamples>(whole);
  bad->ratio = kRatio / 2;  // a different fan-out's sample
  auto mixed = parts;
  mixed.push_back(bad);
  const auto st = MergeCorrespondingSamples(mixed);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().ToString().find("disagree"), std::string::npos);
  auto with_null = parts;
  with_null.push_back(nullptr);
  EXPECT_FALSE(MergeCorrespondingSamples(with_null).ok());
}

TEST(EstimatorMergeTest, MergeShardTablesCanonicalizesByPrimaryKey) {
  // Partitioned base relations reassemble into pk value order at every
  // shard count.
  Table t(SampleSchema());
  ASSERT_TRUE(t.SetPrimaryKey({"sessionId"}).ok());
  for (int64_t id : {9, 3, 7, 1, 5, 0, 8}) {
    ASSERT_TRUE(
        t.Insert({Value::Int(id), Value::Int(id % 3), Value::Double(0.25)})
            .ok());
  }
  auto split = [&](size_t n) {
    std::vector<std::shared_ptr<const Table>> parts;
    std::vector<Table> building;
    for (size_t i = 0; i < n; ++i) {
      Table p(t.schema());
      EXPECT_TRUE(p.SetPrimaryKey({"sessionId"}).ok());
      building.push_back(std::move(p));
    }
    for (size_t i = 0; i < t.NumRows(); ++i) {
      EXPECT_TRUE(building[KeyHash(t.EncodedKey(i)) % n].Insert(t.row(i)).ok());
    }
    for (Table& p : building) {
      parts.push_back(std::make_shared<const Table>(std::move(p)));
    }
    return parts;
  };
  SVC_ASSERT_OK_AND_ASSIGN(Table one, MergeShardTables(split(1)));
  ASSERT_EQ(one.NumRows(), t.NumRows());
  ASSERT_TRUE(one.HasPrimaryKey());
  for (size_t i = 1; i < one.NumRows(); ++i) {
    EXPECT_LT(one.EncodedKey(i - 1), one.EncodedKey(i));
  }
  EXPECT_EQ(EncodedRows(one), EncodedRows(t));
  for (size_t n : {2u, 4u}) {
    SVC_ASSERT_OK_AND_ASSIGN(Table merged, MergeShardTables(split(n)));
    SCOPED_TRACE("shards=" + std::to_string(n));
    ExpectTablesBitIdentical(merged, one);
  }

  // Keyless tables (e.g. a view with no derivable pk) canonicalize by
  // all-column values; duplicate rows are interchangeable and all survive.
  Table keyless(Schema({{"", "v", ValueType::kInt}}));
  for (int64_t v : {3, 1, 3, 2}) keyless.AppendUnchecked({Value::Int(v)});
  Table half_a(keyless.schema()), half_b(keyless.schema());
  half_a.AppendUnchecked({Value::Int(3)});
  half_a.AppendUnchecked({Value::Int(2)});
  half_b.AppendUnchecked({Value::Int(1)});
  half_b.AppendUnchecked({Value::Int(3)});
  SVC_ASSERT_OK_AND_ASSIGN(
      Table merged_keyless,
      MergeShardTables({std::make_shared<const Table>(std::move(half_a)),
                        std::make_shared<const Table>(std::move(half_b))}));
  ASSERT_EQ(merged_keyless.NumRows(), 4u);
  EXPECT_EQ(EncodedRows(merged_keyless), EncodedRows(keyless));
  EXPECT_FALSE(MergeShardTables({}).ok());
}

}  // namespace
}  // namespace svc
