// Concurrency stress for SharedEngine (ISSUE 4): N reader sessions issue
// SVC SELECTs through the SQL path while one writer ingests delta batches
// and runs maintenance commits (REFRESH) in a loop. Every published epoch
// is a deterministic function of the commit sequence, so every reader
// answer must be *bit-identical* to the answer a private replica engine
// gives at that epoch — a reader that ever observed a half-applied commit
// (torn read) produces bytes matching no epoch and fails the comparison.
//
// Runs under ASan/UBSan with the rest of the suite and under TSan via
// `scripts/check.sh --tsan` (the dedicated CI job), which is what verifies
// the snapshot handoff itself is race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/shared_engine.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::EncodedRows;

constexpr int kReaders = 4;
constexpr int kRounds = 10;       // each round = 1 ingest commit + 1 refresh
constexpr int kBatch = 30;        // insert rows per ingest commit
constexpr int kGroups = 6;
constexpr int64_t kInitialRows = 600;

constexpr char kQuerySql[] =
    "SELECT SUM(sv) AS x FROM V WHERE c > 2 "
    "WITH SVC(ratio=0.5, mode=corr)";

Row MakeFactRow(int64_t id, Rng* rng) {
  return {Value::Int(id), Value::Int(rng->UniformInt(1, kGroups)),
          Value::Double(static_cast<double>(rng->UniformInt(0, 1000)) / 8.0)};
}

/// The initial committed fact rows (deterministic; shared by the live
/// engine, the replica, and the delete-batch generator).
std::vector<Row> InitialRows() {
  Rng rng(7);
  std::vector<Row> rows;
  rows.reserve(kInitialRows);
  for (int64_t id = 0; id < kInitialRows; ++id) {
    rows.push_back(MakeFactRow(id, &rng));
  }
  return rows;
}

/// The engine state at epoch 0: F loaded and the aggregate view created.
SvcEngine BuildInitialEngine() {
  Database db;
  Table fact(Schema({{"", "id", ValueType::kInt},
                     {"", "g", ValueType::kInt},
                     {"", "v", ValueType::kDouble}}));
  EXPECT_TRUE(fact.SetPrimaryKey({"id"}).ok());
  for (const Row& r : InitialRows()) EXPECT_TRUE(fact.Insert(r).ok());
  EXPECT_TRUE(db.CreateTable("F", std::move(fact)).ok());
  SvcEngine engine(std::move(db));
  PlanPtr def = SqlToPlan(
                    "SELECT g, COUNT(1) AS c, SUM(v) AS sv FROM F GROUP BY g",
                    *engine.db())
                    .value();
  EXPECT_TRUE(engine.CreateView("V", std::move(def)).ok());
  return engine;
}

/// Delta batch for `round`: kBatch inserts with fresh ids plus three
/// deletes of initial rows (disjoint id ranges across rounds).
DeltaSet MakeBatch(const Database& db, const std::vector<Row>& initial,
                   int round) {
  DeltaSet ds;
  Rng rng(9000 + static_cast<uint64_t>(round));
  int64_t next_id = kInitialRows + static_cast<int64_t>(round) * kBatch;
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_TRUE(ds.AddInsert(db, "F", MakeFactRow(next_id++, &rng)).ok());
  }
  for (int64_t d = 0; d < 3; ++d) {
    const int64_t id = static_cast<int64_t>(round) * 3 + d;
    EXPECT_TRUE(ds.AddDelete(db, "F", initial[id]).ok());
  }
  return ds;
}

/// One reader observation. The head epoch is sampled immediately before
/// and after the statement; the statement's own snapshot necessarily has
/// an epoch in [epoch_before, epoch_after] (epochs are monotonic), so the
/// answer must byte-match the replica's answer at one of those epochs —
/// the ISSUE's "pre- or post-commit snapshot, never a torn read" check.
/// When the two samples agree the match is exact.
struct Observation {
  uint64_t epoch_before = 0;
  uint64_t epoch_after = 0;
  std::vector<std::string> rows;
  std::string error;  // non-empty if the statement failed
};

TEST(ConcurrentEngineTest, ReadersSeeOnlyCommittedEpochsDuringRefresh) {
  const std::vector<Row> initial = InitialRows();

  // Expected answers per epoch, from a private replica replaying the
  // writer's exact commit sequence: epoch 2r+1 = ingest of batch r,
  // epoch 2r+2 = maintenance commit.
  SvcEngine replica = BuildInitialEngine();
  auto shared = std::make_shared<SharedEngine>(SvcEngine(replica));
  std::vector<std::vector<std::string>> expected;
  // Answers come from a fresh private session per epoch (a CoW copy of the
  // replica), so no session state leaks between epochs.
  auto answer_of = [&](const SvcEngine& engine) {
    SqlSession session{SvcEngine(engine)};
    auto r = session.Execute(kQuerySql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? EncodedRows(r.value().rows) : std::vector<std::string>();
  };
  expected.push_back(answer_of(replica));  // epoch 0
  for (int round = 0; round < kRounds; ++round) {
    SVC_ASSERT_OK(
        replica.IngestDeltas(MakeBatch(*replica.db(), initial, round)));
    expected.push_back(answer_of(replica));  // epoch 2r+1 (stale + deltas)
    SVC_ASSERT_OK(replica.MaintainAll());
    expected.push_back(answer_of(replica));  // epoch 2r+2 (fresh)
  }

  // Readers: SQL sessions over the shared engine, recording every answer
  // with its epoch. No gtest assertions inside threads (gtest is not
  // thread-safe); everything is verified after the join.
  std::atomic<int> readers_started{0};
  std::atomic<bool> done{false};
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      SqlSession session(shared);
      bool counted = false;
      auto observe = [&]() -> bool {
        Observation obs;
        obs.epoch_before = shared->epoch();
        auto r = session.Execute(kQuerySql);
        obs.epoch_after = shared->epoch();
        if (!r.ok()) {
          obs.error = r.status().ToString();
        } else {
          obs.rows = EncodedRows(r.value().rows);
        }
        const bool ok = obs.error.empty();
        observations[t].push_back(std::move(obs));
        if (!counted) {
          counted = true;
          readers_started.fetch_add(1, std::memory_order_release);
        }
        return ok;
      };
      // Keep reading while the writer commits; stop early on a statement
      // error (it would only repeat). The writer always terminates, so
      // the loop does too.
      while (!done.load(std::memory_order_acquire)) {
        if (!observe()) return;
      }
      // One final observation after the last commit: pins the final epoch
      // exactly (epoch_before == epoch_after — no writer is running).
      observe();
    });
  }

  // Writer: waits until every reader is actively querying (so commits
  // genuinely interleave with reads), then runs the ingest/refresh loop.
  std::thread writer([&] {
    while (readers_started.load(std::memory_order_acquire) < kReaders) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (int round = 0; round < kRounds; ++round) {
      Status st = shared->Commit([&](SvcEngine* e) {
        return e->IngestDeltas(MakeBatch(*e->db(), initial, round));
      });
      if (!st.ok()) break;  // verified below via epoch count
      if (!shared->Refresh().ok()) break;
    }
    done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();

  ASSERT_EQ(shared->epoch(), static_cast<uint64_t>(2 * kRounds))
      << "writer commits failed part-way";

  // Every observation must byte-match the replica's answer at some epoch
  // in its [before, after] window: a reader that raced a commit would hold
  // bytes matching no published epoch at all.
  size_t total = 0;
  std::map<uint64_t, size_t> epochs_matched;
  for (int t = 0; t < kReaders; ++t) {
    for (size_t i = 0; i < observations[t].size(); ++i) {
      const Observation& obs = observations[t][i];
      ASSERT_TRUE(obs.error.empty())
          << "reader " << t << " query " << i << ": " << obs.error;
      ASSERT_LE(obs.epoch_before, obs.epoch_after);
      ASSERT_LT(obs.epoch_after, expected.size());
      bool matched = false;
      for (uint64_t e = obs.epoch_before; e <= obs.epoch_after && !matched;
           ++e) {
        if (obs.rows == expected[e]) {
          matched = true;
          ++epochs_matched[e];
        }
      }
      EXPECT_TRUE(matched)
          << "reader " << t << " observation " << i
          << " matches no committed epoch in [" << obs.epoch_before << ", "
          << obs.epoch_after << "] — torn read";
      ++total;
    }
    // Snapshots never go backwards: the pre-query head epoch is
    // monotonically non-decreasing per reader.
    for (size_t i = 1; i < observations[t].size(); ++i) {
      EXPECT_LE(observations[t][i - 1].epoch_before,
                observations[t][i].epoch_before);
    }
  }
  EXPECT_GE(total, static_cast<size_t>(kReaders) * 2);
  // The writer waited for all readers before its first commit (epoch 0 is
  // observed) and every reader takes a final post-done observation (the
  // last epoch is observed): commits provably interleaved with reads.
  EXPECT_GE(epochs_matched.size(), 2u);
  EXPECT_TRUE(epochs_matched.count(0));
  EXPECT_TRUE(epochs_matched.count(2 * kRounds));
}

}  // namespace
}  // namespace svc
