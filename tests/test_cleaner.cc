#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "relational/executor.h"
#include "sample/cleaner.h"
#include "tests/test_util.h"
#include "view/maintenance.h"

namespace svc {
namespace {

using testing_util::EncodedRows;
using testing_util::ExpectTablesEquivalent;
using testing_util::MakeLogVideoDb;

PlanPtr VisitViewDef() {
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}}, nullptr, true);
  return PlanNode::Aggregate(
      std::move(join), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "visitCount"},
       {AggFunc::kAvg, Expr::Col("v.duration"), "avgDur"}});
}

class CleanerTest : public ::testing::Test {
 protected:
  CleanerTest() : db_(MakeLogVideoDb()) {
    Table* log = db_.GetMutableTable("Log").value();
    Rng rng(17);
    for (int64_t s = 10; s < 800; ++s) {
      EXPECT_TRUE(
          log->Insert({Value::Int(s), Value::Int(rng.UniformInt(1, 40))})
              .ok());
    }
    Table* video = db_.GetMutableTable("Video").value();
    for (int64_t v = 6; v <= 40; ++v) {
      EXPECT_TRUE(video
                      ->Insert({Value::Int(v), Value::Int(100 + v % 7),
                                Value::Double(0.25 * static_cast<double>(v))})
                      .ok());
    }
  }

  /// Adds a mixed workload of inserts / deletes / updates to Log.
  DeltaSet MakeDeltas(int n, uint64_t seed) {
    DeltaSet deltas;
    Rng rng(seed);
    const Table* log = db_.GetTable("Log").value();
    std::set<int64_t> touched;
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.UniformInt(0, 2));
      if (kind == 0) {
        SVC_EXPECT_OK(deltas.AddInsert(
            db_, "Log",
            {Value::Int(5000 + i), Value::Int(rng.UniformInt(1, 45))}));
      } else {
        const Row& r = log->row(
            static_cast<size_t>(rng.UniformInt(0, log->NumRows() - 1)));
        if (!touched.insert(r[0].AsInt()).second) continue;
        if (kind == 1) {
          SVC_EXPECT_OK(deltas.AddDelete(db_, "Log", r));
        } else {
          SVC_EXPECT_OK(deltas.AddUpdate(
              db_, "Log", r, {r[0], Value::Int(rng.UniformInt(1, 45))}));
        }
      }
    }
    return deltas;
  }

  /// Oracle: the fully fresh view (maintained with the full plan).
  Table FreshView(const MaterializedView& view, const DeltaSet& deltas) {
    auto plan = BuildMaintenancePlan(view, deltas, db_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto fresh = ExecutePlan(*plan->plan, db_);
    EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
    Table out = std::move(fresh).value();
    EXPECT_TRUE(out.SetPrimaryKey(view.stored_pk()).ok());
    return out;
  }

  Database db_;
};

TEST_F(CleanerTest, StaleSampleIsHashSubsetOfView) {
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db_));
  CleanOptions opts{0.3, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(Table sample,
                           MaterializeStaleSample(view, db_, opts));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* full, db_.GetTable("vv"));
  EXPECT_GT(sample.NumRows(), 0u);
  EXPECT_LT(sample.NumRows(), full->NumRows());
  // Deterministic membership: exactly the rows whose key hashes below m.
  size_t expected = 0;
  SVC_ASSERT_OK_AND_ASSIGN(std::vector<size_t> key_idx,
                           full->schema().ResolveAll(view.sampling_key()));
  for (const auto& r : full->rows()) {
    if (HashInSample(EncodeRowKey(r, key_idx), 0.3, HashFamily::kFnv1a)) {
      ++expected;
    }
  }
  EXPECT_EQ(sample.NumRows(), expected);
}

TEST_F(CleanerTest, CleanSampleEqualsSampleOfFreshView) {
  // The central correctness property (Problem 1): cleaning the stale
  // sample yields exactly η applied to the up-to-date view.
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db_));
  DeltaSet deltas = MakeDeltas(150, 7);
  SVC_ASSERT_OK(deltas.Register(&db_));

  CleanOptions opts{0.25, HashFamily::kSha1};
  PushdownReport report;
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples samples,
      CleanViewSample(view, deltas, db_, opts, &report));

  Table fresh_full = FreshView(view, deltas);
  db_.PutTable("__fresh_full", fresh_full);
  PlanPtr eta = PlanNode::HashFilter(PlanNode::Scan("__fresh_full"),
                                     view.sampling_key(), opts.ratio,
                                     opts.family);
  SVC_ASSERT_OK_AND_ASSIGN(Table expected, ExecutePlan(*eta, db_));
  SVC_ASSERT_OK(expected.SetPrimaryKey(view.stored_pk()));
  ExpectTablesEquivalent(samples.fresh, expected);
  EXPECT_GT(samples.fresh.NumRows(), 0u);
}

TEST_F(CleanerTest, CorrespondenceProperties) {
  // Property 1: superfluous keys leave the clean sample, surviving keys
  // are preserved, and missing keys appear at roughly rate m.
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db_));
  DeltaSet deltas = MakeDeltas(300, 11);
  SVC_ASSERT_OK(deltas.Register(&db_));
  CleanOptions opts{0.4, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples samples,
                           CleanViewSample(view, deltas, db_, opts));

  Table fresh_full = FreshView(view, deltas);

  // (a) Every clean-sample key exists in the fresh view (no superfluous).
  for (size_t i = 0; i < samples.fresh.NumRows(); ++i) {
    EXPECT_TRUE(
        fresh_full.FindByEncodedKey(samples.fresh.EncodedKey(i)).ok());
  }
  // (b) Key preservation: a stale-sample key that survives in the fresh
  // view stays in the clean sample.
  for (size_t i = 0; i < samples.stale.NumRows(); ++i) {
    const std::string key = samples.stale.EncodedKey(i);
    if (fresh_full.FindByEncodedKey(key).ok()) {
      EXPECT_TRUE(samples.fresh.FindByEncodedKey(key).ok());
    }
  }
  // (c) The clean sample is uniform over the fresh view at rate ~m.
  const double frac = static_cast<double>(samples.fresh.NumRows()) /
                      static_cast<double>(fresh_full.NumRows());
  EXPECT_NEAR(frac, opts.ratio,
              5 * std::sqrt(opts.ratio * (1 - opts.ratio) /
                            static_cast<double>(fresh_full.NumRows())));
}

TEST_F(CleanerTest, NoDeltasCleaningIsIdentitySample) {
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("vv", VisitViewDef(), &db_));
  DeltaSet deltas;
  CleanOptions opts{0.3, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples samples,
                           CleanViewSample(view, deltas, db_, opts));
  EXPECT_EQ(EncodedRows(samples.fresh), EncodedRows(samples.stale));
}

TEST_F(CleanerTest, SpjViewCleaningWithPartialKeySampling) {
  // Sample the SPJ join view on the join key only (§12.5): pushes to both
  // join inputs and still cleans exactly.
  PlanPtr def = PlanNode::Join(PlanNode::Scan("Log", "l"),
                               PlanNode::Scan("Video", "v"), JoinType::kInner,
                               {{"l.videoId", "v.videoId"}});
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("spjv", def->Clone(), &db_,
                               {"v_videoId"}));
  DeltaSet deltas = MakeDeltas(150, 13);
  SVC_ASSERT_OK(deltas.Register(&db_));
  CleanOptions opts{0.3, HashFamily::kFnv1a};
  PushdownReport report;
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples samples,
      CleanViewSample(view, deltas, db_, opts, &report));

  Table fresh_full = FreshView(view, deltas);
  db_.PutTable("__fresh_full", fresh_full);
  PlanPtr eta = PlanNode::HashFilter(PlanNode::Scan("__fresh_full"),
                                     view.sampling_key(), opts.ratio,
                                     opts.family);
  SVC_ASSERT_OK_AND_ASSIGN(Table expected, ExecutePlan(*eta, db_));
  SVC_ASSERT_OK(expected.SetPrimaryKey(view.stored_pk()));
  ExpectTablesEquivalent(samples.fresh, expected);
}

TEST_F(CleanerTest, RecomputeOnlyViewCleansViaPushdown) {
  // Union view: maintenance is recompute, but η still pushes into the
  // recompute expression.
  PlanPtr a = PlanNode::Project(PlanNode::Scan("Log", "l"),
                                {{"id", Expr::Col("l.sessionId"), ""}});
  PlanPtr b = PlanNode::Project(PlanNode::Scan("Video", "v"),
                                {{"id", Expr::Col("v.videoId"), ""}});
  SVC_ASSERT_OK_AND_ASSIGN(
      MaterializedView view,
      MaterializedView::Create("uv", PlanNode::Union(std::move(a),
                                                     std::move(b)),
                               &db_));
  DeltaSet deltas = MakeDeltas(100, 19);
  SVC_ASSERT_OK(deltas.Register(&db_));
  CleanOptions opts{0.35, HashFamily::kFnv1a};
  PushdownReport report;
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples samples,
      CleanViewSample(view, deltas, db_, opts, &report));

  Table fresh_full = FreshView(view, deltas);
  db_.PutTable("__fresh_full", fresh_full);
  PlanPtr eta = PlanNode::HashFilter(PlanNode::Scan("__fresh_full"),
                                     view.sampling_key(), opts.ratio,
                                     opts.family);
  SVC_ASSERT_OK_AND_ASSIGN(Table expected, ExecutePlan(*eta, db_));
  SVC_ASSERT_OK(expected.SetPrimaryKey(view.stored_pk()));
  ExpectTablesEquivalent(samples.fresh, expected);
}

class CleanerSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(CleanerSeedTest, RandomizedCorrespondence) {
  // Randomized end-to-end Problem 1 check across seeds and ratios.
  Database db = MakeLogVideoDb();
  Rng rng(GetParam() * 101);
  Table* log = db.GetMutableTable("Log").value();
  for (int64_t s = 10; s < 600; ++s) {
    SVC_ASSERT_OK(log->Insert({Value::Int(s),
                               Value::Int(rng.UniformInt(1, 5))}));
  }
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}}, nullptr, true);
  PlanPtr def = PlanNode::Aggregate(
      std::move(join), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "c"},
       {AggFunc::kSum, Expr::Col("v.duration"), "s"}});
  SVC_ASSERT_OK_AND_ASSIGN(MaterializedView view,
                           MaterializedView::Create("vv", def, &db));

  DeltaSet deltas;
  for (int i = 0; i < 120; ++i) {
    SVC_ASSERT_OK(deltas.AddInsert(
        db, "Log", {Value::Int(9000 + i), Value::Int(rng.UniformInt(1, 7))}));
  }
  SVC_ASSERT_OK(deltas.Register(&db));
  const double m = 0.1 + 0.2 * (GetParam() % 4);
  CleanOptions opts{m, HashFamily::kSha1};
  SVC_ASSERT_OK_AND_ASSIGN(CorrespondingSamples samples,
                           CleanViewSample(view, deltas, db, opts));

  SVC_ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                           BuildMaintenancePlan(view, deltas, db));
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh_full, ExecutePlan(*plan.plan, db));
  SVC_ASSERT_OK(fresh_full.SetPrimaryKey(view.stored_pk()));
  db.PutTable("__fresh_full", fresh_full);
  PlanPtr eta = PlanNode::HashFilter(PlanNode::Scan("__fresh_full"),
                                     view.sampling_key(), m, opts.family);
  SVC_ASSERT_OK_AND_ASSIGN(Table expected, ExecutePlan(*eta, db));
  SVC_ASSERT_OK(expected.SetPrimaryKey(view.stored_pk()));
  testing_util::ExpectTablesEquivalent(samples.fresh, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanerSeedTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace svc
