#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "relational/executor.h"
#include "sample/pushdown.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::EncodedRows;
using testing_util::MakeLogVideoDb;

class PushdownTest : public ::testing::Test {
 protected:
  PushdownTest() : db_(MakeLogVideoDb()) {
    // Larger Log so samples are non-trivial.
    Table* log = db_.GetMutableTable("Log").value();
    Rng rng(5);
    for (int64_t s = 10; s < 500; ++s) {
      EXPECT_TRUE(
          log->Insert({Value::Int(s), Value::Int(rng.UniformInt(1, 5))})
              .ok());
    }
  }

  /// Theorem 1 check: the pushed-down plan materializes the identical
  /// sample as η applied at the root.
  void CheckIdenticalSamples(const PlanPtr& plan,
                             const std::vector<std::string>& attrs,
                             double m = 0.3,
                             PushdownReport* report = nullptr) {
    PlanPtr root_eta =
        PlanNode::HashFilter(plan->Clone(), attrs, m, HashFamily::kFnv1a);
    SVC_ASSERT_OK_AND_ASSIGN(Table expected, ExecutePlan(*root_eta, db_));
    SVC_ASSERT_OK_AND_ASSIGN(
        PlanPtr pushed,
        PushDownHashFilter(*plan, attrs, m, HashFamily::kFnv1a, db_, report));
    SVC_ASSERT_OK_AND_ASSIGN(Table actual, ExecutePlan(*pushed, db_));
    EXPECT_EQ(EncodedRows(actual), EncodedRows(expected));
    EXPECT_GT(expected.NumRows(), 0u) << "vacuous test: sample is empty";
  }

  Database db_;
};

TEST_F(PushdownTest, ThroughSelect) {
  PlanPtr p = PlanNode::Select(PlanNode::Scan("Log", "l"),
                               Expr::Gt(Expr::Col("videoId"),
                                        Expr::LitInt(1)));
  PushdownReport report;
  CheckIdenticalSamples(p, {"l.sessionId"}, 0.3, &report);
  EXPECT_EQ(report.at_scan, 1);
  EXPECT_TRUE(report.FullyPushed());
}

TEST_F(PushdownTest, ThroughProjectRename) {
  PlanPtr p = PlanNode::Project(
      PlanNode::Scan("Log", "l"),
      {{"sid", Expr::Col("l.sessionId"), ""},
       {"v2", Expr::Mul(Expr::Col("videoId"), Expr::LitInt(2)), ""}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"sid"}, 0.3, &report);
  EXPECT_TRUE(report.FullyPushed());
}

TEST_F(PushdownTest, BlockedByTransformedAttribute) {
  // The paper's V22 situation: a transformation of the sampling key blocks
  // the push-down. The result is still the identical sample, just
  // materialized above the projection.
  PlanPtr p = PlanNode::Project(
      PlanNode::Scan("Log", "l"),
      {{"sid", Expr::Add(Expr::Col("l.sessionId"), Expr::LitInt(0)), ""}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"sid"}, 0.3, &report);
  EXPECT_EQ(report.blocked, 1);
  EXPECT_FALSE(report.FullyPushed());
}

TEST_F(PushdownTest, ThroughAggregateOnGroupKey) {
  PlanPtr p = PlanNode::Aggregate(PlanNode::Scan("Log", "l"), {"l.videoId"},
                                  {{AggFunc::kCountStar, nullptr, "c"}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"l.videoId"}, 0.6, &report);
  EXPECT_TRUE(report.FullyPushed());
}

TEST_F(PushdownTest, BlockedByAggregateValueAttribute) {
  // Sampling on the aggregate output (the paper's nested-aggregate
  // example) cannot push below γ.
  PlanPtr inner = PlanNode::Aggregate(PlanNode::Scan("Log", "l"),
                                      {"l.videoId"},
                                      {{AggFunc::kCountStar, nullptr, "c"}});
  PlanPtr p = PlanNode::Aggregate(std::move(inner), {"c"},
                                  {{AggFunc::kCountStar, nullptr, "n"}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"c"}, 0.8, &report);
  EXPECT_EQ(report.blocked, 1);
}

TEST_F(PushdownTest, ForeignKeyJoinPushesToFactSide) {
  PlanPtr p = PlanNode::Join(PlanNode::Scan("Log", "l"),
                             PlanNode::Scan("Video", "v"), JoinType::kInner,
                             {{"l.videoId", "v.videoId"}}, nullptr, true);
  PushdownReport report;
  CheckIdenticalSamples(p, {"l.sessionId"}, 0.3, &report);
  EXPECT_TRUE(report.FullyPushed());
  EXPECT_EQ(report.at_scan, 1);  // only the fact side is sampled
}

TEST_F(PushdownTest, EqualityJoinKeyPushesToBothSides) {
  PlanPtr p = PlanNode::Join(PlanNode::Scan("Log", "l"),
                             PlanNode::Scan("Video", "v"), JoinType::kInner,
                             {{"l.videoId", "v.videoId"}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"l.videoId"}, 0.6, &report);
  EXPECT_TRUE(report.FullyPushed());
  EXPECT_EQ(report.at_scan, 2);  // both join inputs sampled
}

TEST_F(PushdownTest, JoinKeyFromRightSideAlsoPushesBoth) {
  PlanPtr p = PlanNode::Join(PlanNode::Scan("Log", "l"),
                             PlanNode::Scan("Video", "v"), JoinType::kInner,
                             {{"l.videoId", "v.videoId"}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"v.videoId"}, 0.6, &report);
  EXPECT_EQ(report.at_scan, 2);
}

TEST_F(PushdownTest, CompositeKeySpanningJoinBlocks) {
  // Sampling (l.sessionId, v.ownerId): attributes from both sides that are
  // not the join keys — the join blocks the push-down.
  PlanPtr p = PlanNode::Join(PlanNode::Scan("Log", "l"),
                             PlanNode::Scan("Video", "v"), JoinType::kInner,
                             {{"l.videoId", "v.videoId"}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"l.sessionId", "v.ownerId"}, 0.5, &report);
  EXPECT_EQ(report.blocked, 1);
}

TEST_F(PushdownTest, OuterJoinBlocksNonKeyPush) {
  PlanPtr p = PlanNode::Join(PlanNode::Scan("Video", "v"),
                             PlanNode::Scan("Log", "l"), JoinType::kLeft,
                             {{"v.videoId", "l.videoId"}});
  PushdownReport report;
  CheckIdenticalSamples(p, {"v.ownerId"}, 0.9, &report);
  EXPECT_EQ(report.blocked, 1);
}

TEST_F(PushdownTest, ThroughUnionBothBranches) {
  PlanPtr a = PlanNode::Project(PlanNode::Scan("Log", "l"),
                                {{"id", Expr::Col("l.sessionId"), ""}});
  PlanPtr b = PlanNode::Project(PlanNode::Scan("Video", "v"),
                                {{"id", Expr::Col("v.videoId"), ""}});
  PlanPtr p = PlanNode::Union(std::move(a), std::move(b));
  PushdownReport report;
  CheckIdenticalSamples(p, {"id"}, 0.5, &report);
  EXPECT_EQ(report.at_scan, 2);
}

TEST_F(PushdownTest, ThroughIntersectAndDifference) {
  // a: sessions that visited video 1; b: all sessions.
  PlanPtr a = PlanNode::Project(
      PlanNode::Select(PlanNode::Scan("Log", "l"),
                       Expr::Eq(Expr::Col("videoId"), Expr::LitInt(1))),
      {{"id", Expr::Col("l.sessionId"), ""}});
  PlanPtr b = PlanNode::Project(PlanNode::Scan("Log", "l"),
                                {{"id", Expr::Col("l.sessionId"), ""}});
  CheckIdenticalSamples(PlanNode::Intersect(b->Clone(), a->Clone()), {"id"},
                        0.9);
  CheckIdenticalSamples(PlanNode::Difference(b, a), {"id"}, 0.9);
}

TEST_F(PushdownTest, PaperExampleVisitViewPipeline) {
  // η over γ_videoId(Log ⋈ Video): pushes through the aggregate, then
  // through the equality join to both base relations (Example 5 / Fig. 3).
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"),
                                JoinType::kInner,
                                {{"l.videoId", "v.videoId"}});
  PlanPtr view = PlanNode::Aggregate(
      std::move(join), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "visitCount"}});
  PushdownReport report;
  CheckIdenticalSamples(view, {"l.videoId"}, 0.6, &report);
  EXPECT_TRUE(report.FullyPushed());
  EXPECT_EQ(report.at_scan, 2);
}

class PushdownRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(PushdownRatioTest, SampleFractionTracksRatio) {
  Database db;
  Table t(Schema({{"", "id", ValueType::kInt}}));
  SVC_ASSERT_OK(t.SetPrimaryKey({"id"}));
  for (int64_t i = 0; i < 20000; ++i) {
    SVC_ASSERT_OK(t.Insert({Value::Int(i)}));
  }
  SVC_ASSERT_OK(db.CreateTable("T", std::move(t)));
  const double m = GetParam();
  PlanPtr p = PlanNode::HashFilter(PlanNode::Scan("T"), {"id"}, m,
                                   HashFamily::kSha1);
  SVC_ASSERT_OK_AND_ASSIGN(Table s, ExecutePlan(*p, db));
  const double frac = static_cast<double>(s.NumRows()) / 20000.0;
  EXPECT_NEAR(frac, m, 5 * std::sqrt(m * (1 - m) / 20000.0));
}

INSTANTIATE_TEST_SUITE_P(Ratios, PushdownRatioTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace svc
