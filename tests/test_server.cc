// Socket-level server tests (server/server.h + server/client.h): the Hello
// handshake and version negotiation, transcript equivalence of a remote
// shell vs a local session, N concurrent clients vs a private-engine
// replica, prepared statements skipping the parser (observable in the
// server counters), admission control under a pipelined flood, and clean
// Error responses — never crashes or hangs — for malformed frames, unknown
// tags, and out-of-order traffic.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "shell/shell.h"
#include "storage/durable_engine.h"
#include "storage/serde.h"
#include "tests/test_util.h"

namespace svc {
namespace {

std::unique_ptr<SvcServer> StartServer(ServerOptions opts = {}) {
  auto server = std::make_unique<SvcServer>(
      std::move(opts), std::make_shared<SharedEngine>(Database()));
  EXPECT_TRUE(server->Start().ok());
  return server;
}

std::unique_ptr<SvcClient> ConnectTo(const SvcServer& server) {
  ClientOptions opts;
  opts.port = server.port();
  auto client = SvcClient::Connect(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// A raw TCP connection for speaking mangled protocol at the server: tests
/// of framing failures cannot go through SvcClient, which only emits
/// well-formed frames.
class RawConn {
 public:
  explicit RawConn(uint16_t port) { Init(port); }
  ~RawConn() {
    if (fd_ >= 0) close(fd_);
  }

  void SendBytes(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  void SendFrame(FrameTag tag, uint32_t request_id, const std::string& body) {
    Frame frame;
    frame.tag = tag;
    frame.request_id = request_id;
    frame.body = body;
    std::string wire;
    EncodeFrame(frame, &wire);
    SendBytes(wire);
  }

  void Hello() {
    HelloRequest req;
    req.client_name = "raw-test";
    std::string body;
    EncodeHelloRequest(req, &body);
    SendFrame(FrameTag::kHello, next_id_++, body);
    Frame reply;
    ASSERT_NO_FATAL_FAILURE(ReadFrame(&reply));
    ASSERT_EQ(reply.tag, FrameTag::kHelloOk);
  }

  /// Blocks until one whole frame arrives.
  void ReadFrame(Frame* out) {
    char buf[65536];
    while (true) {
      auto decoded = TryDecodeFrame(&inbuf_, kDefaultMaxFrameBytes);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      if (decoded->has_value()) {
        *out = std::move(**decoded);
        return;
      }
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "server closed the connection mid-frame";
      inbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  /// True once the server closes the connection (after draining input).
  bool ServerClosed() {
    char buf[4096];
    while (true) {
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
      inbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  uint32_t next_id() { return next_id_++; }

 private:
  void Init(uint16_t port) {  // ctor body; gtest ASSERTs need a void scope
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }

  int fd_ = -1;
  uint32_t next_id_ = 1;
  std::string inbuf_;
};

StatusCode CodeOf(const Frame& error_frame) {
  EXPECT_EQ(error_frame.tag, FrameTag::kError);
  return DecodeErrorBody(error_frame.body).code();
}

// ---- Lifecycle --------------------------------------------------------------

TEST(ServerTest, StartsOnEphemeralPortAndStopsIdempotently) {
  auto server = StartServer();
  EXPECT_GT(server->port(), 0);
  server->Stop();
  server->Stop();  // idempotent; destructor will call it again
}

TEST(ServerTest, HelloNegotiatesVersionAndCountsConnections) {
  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->negotiated_version(), kProtocolVersionMax);
  EXPECT_EQ(server->stats().connections_accepted, 1u);
}

// ---- Statement execution over the wire --------------------------------------

TEST(ServerTest, RemoteShellTranscriptMatchesLocalSession) {
  std::ifstream in(std::string(SVC_REPO_DIR) + "/examples/quickstart.sql");
  ASSERT_TRUE(in.is_open());
  std::ostringstream script;
  script << in.rdbuf();

  SqlSession local(EngineHandle::Private());
  std::ostringstream local_out;
  ShellOptions opts;
  opts.echo = true;
  Shell local_shell(&local, &local_out, opts);
  SVC_ASSERT_OK(local_shell.RunScript(script.str()));

  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  std::ostringstream remote_out;
  Shell remote_shell(client.get(), &remote_out, opts);
  SVC_ASSERT_OK(remote_shell.RunScript(script.str()));

  // The whole rendered transcript — table layout, estimates, stats — is
  // bit-identical over the socket.
  EXPECT_EQ(remote_out.str(), local_out.str());
}

TEST(ServerTest, ErrorStatusCodesSurviveTheWire) {
  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  auto missing = client->Execute("SELECT * FROM missing;");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kUnknownRelation);

  auto garbled = client->Execute("SELEKT;");
  ASSERT_FALSE(garbled.ok());
  EXPECT_EQ(garbled.status().code(), StatusCode::kParseError);

  SVC_ASSERT_OK(client->Execute("CREATE TABLE t (a INT, PRIMARY KEY (a));")
                    .status());
  auto dup = client->Execute("INSERT INTO t VALUES (1), (1);");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);
}

/// Blanks the one legitimately cross-session line in a transcript: REFRESH
/// reports how many *engine-global* pending deltas the commit drained, and
/// on a shared engine that count depends on which client's REFRESH ran
/// first. Every other line — all row data — must be bit-identical.
std::string MaskRefreshSummaries(const std::string& transcript) {
  std::istringstream in(transcript);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("refreshed ", 0) == 0) line = "refreshed <masked>";
    out << line << "\n";
  }
  return out.str();
}

TEST(ServerTest, ConcurrentClientsMatchPrivateEngineReplicas) {
  constexpr int kClients = 4;
  auto server = StartServer();
  std::vector<std::string> remote(kClients), local(kClients);

  auto workload_for = [](int c) {
    const std::string t = "t" + std::to_string(c);
    std::ostringstream sql;
    sql << "CREATE TABLE " << t << " (a INT, b DOUBLE, PRIMARY KEY (a));";
    sql << "INSERT INTO " << t << " VALUES ";
    for (int i = 0; i < 20; ++i) {
      sql << (i > 0 ? ", " : "") << "(" << i << ", " << (c + 1) * i << ".5)";
    }
    sql << ";REFRESH ALL;";
    sql << "SELECT COUNT(1) AS n, SUM(b) AS s FROM " << t << ";";
    sql << "SELECT a, b FROM " << t << " WHERE a < 5;";
    return sql.str();
  };

  // Each client runs its own workload concurrently against the one shared
  // server; disjoint relations make every transcript deterministic.
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = server->port();
      auto client = SvcClient::Connect(copts);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      std::ostringstream out;
      ShellOptions opts;
      opts.echo = true;
      Shell shell(client->get(), &out, opts);
      SVC_ASSERT_OK(shell.RunScript(workload_for(c)));
      remote[c] = out.str();
    });
  }
  for (auto& t : threads) t.join();

  // A fresh private engine replays each workload serially: the remote
  // transcript of every client must match its replica bit for bit.
  for (int c = 0; c < kClients; ++c) {
    SqlSession replica(EngineHandle::Private());
    std::ostringstream out;
    ShellOptions opts;
    opts.echo = true;
    Shell shell(&replica, &out, opts);
    SVC_ASSERT_OK(shell.RunScript(workload_for(c)));
    local[c] = out.str();
    EXPECT_EQ(MaskRefreshSummaries(remote[c]), MaskRefreshSummaries(local[c]))
        << "client " << c;
  }
}

// ---- Prepared statements ----------------------------------------------------

TEST(ServerTest, PreparedMatchesTextAndSkipsTheParser) {
  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  SVC_ASSERT_OK(
      client->Execute("CREATE TABLE t (a INT, b DOUBLE, PRIMARY KEY (a));")
          .status());

  SVC_ASSERT_OK_AND_ASSIGN(
      SvcClient::Prepared ins,
      client->Prepare("INSERT INTO t VALUES (?, ?);"));
  EXPECT_EQ(ins.num_params, 2u);
  const uint64_t parsed_before = server->stats().statements_parsed;
  for (int i = 0; i < 8; ++i) {
    SVC_ASSERT_OK(client
                      ->ExecutePrepared(
                          ins, {Value::Int(i), Value::Double(i * 0.5)})
                      .status());
  }
  // Eight Executes, zero new parses: the server served them from the
  // cached AST.
  EXPECT_EQ(server->stats().statements_parsed, parsed_before);
  EXPECT_GE(server->stats().prepared_executes, 8u);
  SVC_ASSERT_OK(client->Execute("REFRESH ALL;").status());

  SVC_ASSERT_OK_AND_ASSIGN(
      SvcClient::Prepared sel,
      client->Prepare("SELECT a, b FROM t WHERE a >= ?;"));
  EXPECT_EQ(sel.num_params, 1u);
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult prepared_rows,
                           client->ExecutePrepared(sel, {Value::Int(5)}));
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult text_rows,
                           client->Execute("SELECT a, b FROM t WHERE a >= 5;"));
  // Differential: the bound plan answers exactly like the literal text.
  EXPECT_EQ(testing_util::EncodedRows(prepared_rows.rows),
            testing_util::EncodedRows(text_rows.rows));

  SVC_ASSERT_OK(client->ClosePrepared(sel));
  auto closed = client->ExecutePrepared(sel, {Value::Int(5)});
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kNotFound);
}

TEST(ServerTest, PreparedParamCountIsEnforced) {
  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  SVC_ASSERT_OK(
      client->Execute("CREATE TABLE t (a INT, PRIMARY KEY (a));").status());
  SVC_ASSERT_OK_AND_ASSIGN(SvcClient::Prepared ins,
                           client->Prepare("INSERT INTO t VALUES (?);"));
  auto missing = client->ExecutePrepared(ins, {});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  auto extra = client->ExecutePrepared(ins, {Value::Int(1), Value::Int(2)});
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, QueryWithPlaceholdersMustBePrepared) {
  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  // Rejected after parsing, before execution — the relation need not even
  // exist for the placeholder check to fire.
  auto r = client->Execute("SELECT a FROM t WHERE a = ?;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, ExecuteUnknownStatementIdFailsCleanly) {
  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  SvcClient::Prepared bogus;
  bogus.id = 999;
  auto r = client->ExecutePrepared(bogus, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---- Protocol abuse ---------------------------------------------------------

TEST(ServerTest, QueryBeforeHelloIsAProtocolError) {
  auto server = StartServer();
  RawConn raw(server->port());
  std::string body;
  PutStr(&body, "SELECT 1;");
  raw.SendFrame(FrameTag::kQuery, raw.next_id(), body);
  Frame reply;
  ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&reply));
  EXPECT_EQ(CodeOf(reply), StatusCode::kProtocol);
}

TEST(ServerTest, VersionMismatchIsRejected) {
  auto server = StartServer();
  RawConn raw(server->port());
  HelloRequest req;
  req.max_version = 0;  // speaks nothing the server knows
  req.client_name = "ancient";
  std::string body;
  EncodeHelloRequest(req, &body);
  raw.SendFrame(FrameTag::kHello, raw.next_id(), body);
  Frame reply;
  ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&reply));
  EXPECT_EQ(CodeOf(reply), StatusCode::kProtocol);
}

TEST(ServerTest, UnknownTagGetsErrorAndConnectionSurvives) {
  auto server = StartServer();
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  Frame junk;
  junk.tag = static_cast<FrameTag>(0x7F);
  junk.body = "???";
  SVC_ASSERT_OK_AND_ASSIGN(Frame reply, client->RoundTrip(junk));
  EXPECT_EQ(CodeOf(reply), StatusCode::kProtocol);
  // A minor-version client sending a frame this server doesn't know must
  // not lose the connection: the next request still works.
  SVC_ASSERT_OK(
      client->Execute("CREATE TABLE t (a INT, PRIMARY KEY (a));").status());
}

TEST(ServerTest, BadCrcGetsErrorFrameThenDisconnect) {
  auto server = StartServer();
  RawConn raw(server->port());
  ASSERT_NO_FATAL_FAILURE(raw.Hello());
  Frame query;
  query.tag = FrameTag::kQuery;
  query.request_id = 2;
  PutStr(&query.body, "SELECT 1;");
  std::string wire;
  EncodeFrame(query, &wire);
  wire[wire.size() - 1] ^= 0x40;  // corrupt the payload under the CRC
  raw.SendBytes(wire);
  Frame reply;
  ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&reply));
  EXPECT_EQ(reply.request_id, 0u);  // framing is broken; no id is trusted
  EXPECT_EQ(CodeOf(reply), StatusCode::kProtocol);
  EXPECT_TRUE(raw.ServerClosed());
  EXPECT_GE(server->stats().protocol_errors, 1u);
}

TEST(ServerTest, OversizedFrameGetsErrorFrameThenDisconnect) {
  ServerOptions opts;
  opts.max_frame_bytes = 1024;
  auto server = StartServer(opts);
  RawConn raw(server->port());
  ASSERT_NO_FATAL_FAILURE(raw.Hello());
  // A header declaring a body far beyond the limit: the server must refuse
  // at the header, not buffer 16 MiB first.
  std::string wire;
  PutU32(&wire, 1u << 24);
  PutU32(&wire, 0);  // CRC never checked; length is rejected first
  raw.SendBytes(wire);
  Frame reply;
  ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&reply));
  EXPECT_EQ(CodeOf(reply), StatusCode::kProtocol);
  EXPECT_TRUE(raw.ServerClosed());
}

TEST(ServerTest, ValidThenCorruptFrameInOneBurstDoesNotWedgeTheServer) {
  ServerOptions opts;
  opts.max_inflight = 2;
  auto server = StartServer(opts);
  // One TCP burst: a well-formed query immediately followed by a corrupt
  // frame. The IO thread usually decodes both in a single read pass — the
  // query is queued for a worker, then the protocol error must dequeue it
  // again without unbalancing the in-flight counter or leaving a worker
  // to pop the emptied request queue.
  for (int round = 0; round < 8; ++round) {
    RawConn raw(server->port());
    ASSERT_NO_FATAL_FAILURE(raw.Hello());
    Frame query;
    query.tag = FrameTag::kQuery;
    query.request_id = 2;
    PutStr(&query.body, "SELECT a FROM t;");
    std::string burst;
    EncodeFrame(query, &burst);
    query.request_id = 3;
    std::string corrupt;
    EncodeFrame(query, &corrupt);
    corrupt[corrupt.size() - 1] ^= 0x40;
    burst += corrupt;
    raw.SendBytes(burst);
    EXPECT_TRUE(raw.ServerClosed());
  }
  EXPECT_GE(server->stats().protocol_errors, 8u);
  // The in-flight counter must still be balanced: an underflow would pin
  // inflight >= max_inflight and reject every future request as
  // Overloaded.
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 4; ++i) {
    SVC_ASSERT_OK(client
                      ->Execute("CREATE TABLE t" + std::to_string(i) +
                                " (a INT, PRIMARY KEY (a));")
                      .status());
  }
}

TEST(ServerTest, OversizedResultBecomesDecodableOutOfRangeError) {
  ServerOptions opts;
  opts.max_frame_bytes = 1024;
  auto server = StartServer(opts);
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  SVC_ASSERT_OK(
      client->Execute("CREATE TABLE t (a INT, s STRING, PRIMARY KEY (a));")
          .status());
  const std::string filler(64, 'x');
  for (int i = 0; i < 32; ++i) {
    SVC_ASSERT_OK(client
                      ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ", '" + filler + "');")
                      .status());
  }
  SVC_ASSERT_OK(client->Execute("REFRESH ALL;").status());
  // The full table is ~2 KiB encoded — beyond any frame this server may
  // send. The answer must be a decodable OutOfRange error, not an
  // oversized frame the client rejects as an unrecoverable framing
  // failure.
  auto big = client->Execute("SELECT a, s FROM t;");
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kOutOfRange);
  // The connection (and its framing) survives: a narrower query answers.
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult one,
                           client->Execute("SELECT s FROM t WHERE a = 0;"));
  EXPECT_EQ(one.rows.NumRows(), 1u);
}

TEST(ServerTest, TruncatedFrameThenDisconnectDoesNotWedgeTheServer) {
  auto server = StartServer();
  {
    RawConn raw(server->port());
    ASSERT_NO_FATAL_FAILURE(raw.Hello());
    std::string half;
    PutU32(&half, 64);  // promises 64 payload bytes, delivers none
    raw.SendBytes(half);
  }  // disconnect with the frame still incomplete
  // The server must reap that connection and keep serving new ones.
  auto client = ConnectTo(*server);
  ASSERT_NE(client, nullptr);
  SVC_ASSERT_OK(
      client->Execute("CREATE TABLE t (a INT, PRIMARY KEY (a));").status());
}

TEST(ServerTest, PipelinedFloodHitsAdmissionControl) {
  ServerOptions opts;
  opts.max_inflight = 1;
  opts.workers = 1;
  auto server = StartServer(opts);
  RawConn raw(server->port());
  ASSERT_NO_FATAL_FAILURE(raw.Hello());
  std::string ddl;
  PutStr(&ddl, "CREATE TABLE t (a INT, PRIMARY KEY (a));");
  raw.SendFrame(FrameTag::kQuery, raw.next_id(), ddl);
  Frame created;
  ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&created));
  ASSERT_EQ(created.tag, FrameTag::kOk);

  // Blast one batch of pipelined queries in a single write. With one
  // in-flight slot, the IO thread must reject some of them immediately
  // with Overloaded while the worker chews the first.
  constexpr uint32_t kFlood = 64;
  std::string burst;
  for (uint32_t i = 0; i < kFlood; ++i) {
    Frame query;
    query.tag = FrameTag::kQuery;
    query.request_id = raw.next_id();
    PutStr(&query.body, "SELECT a FROM t;");
    EncodeFrame(query, &burst);
  }
  raw.SendBytes(burst);

  uint32_t ok = 0, overloaded = 0;
  for (uint32_t i = 0; i < kFlood; ++i) {
    Frame reply;
    ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&reply));
    if (reply.tag == FrameTag::kError) {
      EXPECT_EQ(CodeOf(reply), StatusCode::kOverloaded);
      ++overloaded;
    } else {
      EXPECT_EQ(reply.tag, FrameTag::kResultSet);
      ++ok;
    }
  }
  EXPECT_EQ(ok + overloaded, kFlood);
  EXPECT_GE(ok, 1u);          // admission control never starves the line
  EXPECT_GE(overloaded, 1u);  // ...and the flood did trip it
  EXPECT_EQ(server->stats().overload_rejections, overloaded);

  // Back under the limit, the same connection serves again.
  std::string body;
  PutStr(&body, "SELECT a FROM t;");
  raw.SendFrame(FrameTag::kQuery, raw.next_id(), body);
  Frame reply;
  ASSERT_NO_FATAL_FAILURE(raw.ReadFrame(&reply));
  EXPECT_EQ(reply.tag, FrameTag::kResultSet);
}

// ---- Durable serving --------------------------------------------------------

TEST(ServerTest, DurableServerPersistsAcrossRestart) {
  const std::string dir = ::testing::TempDir() + "/svc_served_durable";
  std::filesystem::remove_all(dir);
  DurableOptions dopts;
  dopts.data_dir = dir;
  {
    SVC_ASSERT_OK_AND_ASSIGN(std::shared_ptr<DurableEngine> durable,
                             DurableEngine::Open(dopts));
    SvcServer server(ServerOptions{}, durable);
    SVC_ASSERT_OK(server.Start());
    ClientOptions copts;
    copts.port = server.port();
    SVC_ASSERT_OK_AND_ASSIGN(std::unique_ptr<SvcClient> client,
                             SvcClient::Connect(copts));
    SVC_ASSERT_OK(
        client->Execute("CREATE TABLE t (a INT, PRIMARY KEY (a));").status());
    SVC_ASSERT_OK(
        client->Execute("INSERT INTO t VALUES (1), (2), (3);").status());
    SVC_ASSERT_OK(client->Execute("REFRESH ALL;").status());
    server.Stop();
  }
  // Reopen the directory: the WAL replays the remote session's commits.
  SVC_ASSERT_OK_AND_ASSIGN(std::shared_ptr<DurableEngine> reopened,
                           DurableEngine::Open(dopts));
  SqlSession session(EngineHandle::Durable(reopened));
  SVC_ASSERT_OK_AND_ASSIGN(SqlResult rows,
                           session.Execute("SELECT COUNT(1) AS n FROM t;"));
  ASSERT_EQ(rows.rows.NumRows(), 1u);
  EXPECT_TRUE(rows.rows.row(0)[0] == Value::Int(3));
  std::filesystem::remove_all(dir);
}

// ---- EngineHandle -----------------------------------------------------------

TEST(EngineHandleTest, ModesExposeExactlyOneEngine) {
  EngineHandle priv = EngineHandle::Private();
  EXPECT_FALSE(priv.is_shared());
  EXPECT_FALSE(priv.is_durable());
  EXPECT_NE(priv.private_engine(), nullptr);

  auto shared_engine = std::make_shared<SharedEngine>(Database());
  EngineHandle shared = EngineHandle::Shared(shared_engine);
  EXPECT_TRUE(shared.is_shared());
  EXPECT_FALSE(shared.is_durable());
  EXPECT_EQ(shared.private_engine(), nullptr);
  EXPECT_EQ(shared.shared().get(), shared_engine.get());

  const std::string dir = ::testing::TempDir() + "/svc_handle_durable";
  std::filesystem::remove_all(dir);
  DurableOptions dopts;
  dopts.data_dir = dir;
  SVC_ASSERT_OK_AND_ASSIGN(std::shared_ptr<DurableEngine> durable,
                           DurableEngine::Open(dopts));
  EngineHandle dh = EngineHandle::Durable(durable);
  EXPECT_TRUE(dh.is_shared());  // durable implies shared-mode semantics
  EXPECT_TRUE(dh.is_durable());
  EXPECT_EQ(dh.shared().get(), durable->shared().get());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace svc
