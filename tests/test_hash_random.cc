#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace svc {
namespace {

TEST(Sha1Test, KnownVectors) {
  // FIPS 180-1 test vectors.
  EXPECT_EQ(Sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(Sha1Hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, MultiBlockMessage) {
  // > 64 bytes forces multiple compression rounds.
  std::string msg(200, 'a');
  EXPECT_EQ(Sha1Hex(msg).size(), 40u);
  EXPECT_NE(Sha1Hex(msg), Sha1Hex(msg + "a"));
}

class HashFamilyTest : public ::testing::TestWithParam<HashFamily> {};

TEST_P(HashFamilyTest, Deterministic) {
  const HashFamily f = GetParam();
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key-" + std::to_string(i * 977);
    EXPECT_EQ(Hash64(key, f), Hash64(key, f));
    EXPECT_EQ(HashToUnit(key, f), HashToUnit(key, f));
  }
}

TEST_P(HashFamilyTest, UnitRange) {
  const HashFamily f = GetParam();
  for (int i = 0; i < 1000; ++i) {
    const double u = HashToUnit("k" + std::to_string(i), f);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST_P(HashFamilyTest, SamplingRatioIsApproximatelyM) {
  // The η operator keeps h(key) < m; over many keys the kept fraction must
  // approach m (SUHA, §12.3 of the paper).
  const HashFamily f = GetParam();
  const int n = 20000;
  for (double m : {0.05, 0.10, 0.25, 0.5}) {
    int kept = 0;
    for (int i = 0; i < n; ++i) {
      if (HashInSample("pk:" + std::to_string(i), m, f)) ++kept;
    }
    const double frac = static_cast<double>(kept) / n;
    // 5-sigma binomial bound.
    const double sigma = std::sqrt(m * (1 - m) / n);
    EXPECT_NEAR(frac, m, 5 * sigma) << HashFamilyName(f) << " m=" << m;
  }
}

TEST_P(HashFamilyTest, UniformityChiSquared) {
  // Bucket hash values of sequential keys into 64 bins; a grossly
  // non-uniform hash fails a loose chi-squared threshold.
  const HashFamily f = GetParam();
  const int n = 64000, bins = 64;
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < n; ++i) {
    const double u = HashToUnit("row-" + std::to_string(i), f);
    ++counts[static_cast<int>(u * bins)];
  }
  const double expected = static_cast<double>(n) / bins;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 63 dof; mean 63, sd ~11.2. Allow a generous margin.
  EXPECT_LT(chi2, 150.0) << HashFamilyName(f);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HashFamilyTest,
                         ::testing::Values(HashFamily::kLinear,
                                           HashFamily::kSdbm,
                                           HashFamily::kFnv1a,
                                           HashFamily::kSha1),
                         [](const auto& info) {
                           return HashFamilyName(info.param);
                         });

TEST(RngTest, DeterministicStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(19);
  auto p = rng.Permutation(100);
  std::set<size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(ZipfianTest, ThetaZeroIsUniform) {
  Rng rng(23);
  Zipfian z(10, 0.0);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Next(&rng)];
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), 0.1, 0.01) << k;
  }
}

TEST(ZipfianTest, SkewConcentratesOnSmallRanks) {
  Rng rng(29);
  Zipfian z(1000, 2.0);
  const int n = 50000;
  int rank1 = 0;
  for (int i = 0; i < n; ++i) {
    if (z.Next(&rng) == 1) ++rank1;
  }
  // With theta=2, P(1) = 1/zeta_1000(2) ~ 0.608.
  EXPECT_NEAR(rank1 / static_cast<double>(n), 0.608, 0.02);
}

TEST(ZipfianTest, HigherThetaMoreSkew) {
  Rng rng(31);
  Zipfian z1(100, 1.0), z4(100, 4.0);
  int top1 = 0, top4 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (z1.Next(&rng) <= 2) ++top1;
    if (z4.Next(&rng) <= 2) ++top4;
  }
  EXPECT_GT(top4, top1);
}

TEST(ZipfianTest, RanksWithinDomain) {
  Rng rng(37);
  Zipfian z(17, 3.0);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t r = z.Next(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 17u);
  }
}

}  // namespace
}  // namespace svc
