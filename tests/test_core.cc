#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/minmax.h"
#include "core/outlier.h"
#include "core/policy.h"
#include "core/select_clean.h"
#include "core/svc.h"
#include "tests/test_util.h"

namespace svc {
namespace {

using testing_util::MakeLogVideoDb;

PlanPtr VisitViewDef() {
  PlanPtr join = PlanNode::Join(PlanNode::Scan("Log", "l"),
                                PlanNode::Scan("Video", "v"), JoinType::kInner,
                                {{"l.videoId", "v.videoId"}}, nullptr, true);
  return PlanNode::Aggregate(
      std::move(join), {"l.videoId"},
      {{AggFunc::kCountStar, nullptr, "visitCount"},
       {AggFunc::kSum, Expr::Col("v.duration"), "totalDur"}});
}

/// Engine with a larger Log/Video database and the visitView registered.
SvcEngine MakeEngine(uint64_t seed = 41, int videos = 60, int sessions = 3000) {
  Database db = MakeLogVideoDb();
  Rng rng(seed);
  {
    Table* video = db.GetMutableTable("Video").value();
    for (int64_t v = 6; v <= videos; ++v) {
      EXPECT_TRUE(video
                      ->Insert({Value::Int(v), Value::Int(100 + v % 9),
                                Value::Double(rng.Uniform(0.1, 3.0))})
                      .ok());
    }
    Table* log = db.GetMutableTable("Log").value();
    Zipfian zipf(videos, 1.2);
    for (int64_t s = 10; s < sessions; ++s) {
      EXPECT_TRUE(log->Insert({Value::Int(s),
                               Value::Int(static_cast<int64_t>(
                                   zipf.Next(&rng)))})
                      .ok());
    }
  }
  SvcEngine engine(std::move(db));
  EXPECT_TRUE(engine.CreateView("visitView", VisitViewDef()).ok());
  return engine;
}

TEST(SvcEngineTest, CreateViewAndQueryWithoutStaleness) {
  SvcEngine engine = MakeEngine();
  AggregateQuery q = AggregateQuery::Count(
      Expr::Gt(Expr::Col("visitCount"), Expr::LitInt(10)));
  SVC_ASSERT_OK_AND_ASSIGN(double stale, engine.QueryStale("visitView", q));
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer ans, engine.Query("visitView", q));
  // CORR with no pending deltas is exact.
  EXPECT_DOUBLE_EQ(ans.estimate.value, stale);
}

TEST(SvcEngineTest, DuplicateViewRejected) {
  SvcEngine engine = MakeEngine();
  EXPECT_FALSE(engine.CreateView("visitView", VisitViewDef()).ok());
}

TEST(SvcEngineTest, QueryReflectsPendingDeltas) {
  SvcEngine engine = MakeEngine();
  // Insert many visits spread across the videos.
  for (int i = 0; i < 500; ++i) {
    SVC_ASSERT_OK(engine.InsertRecord(
        "Log", {Value::Int(100000 + i), Value::Int(1 + i % 40)}));
  }
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  SVC_ASSERT_OK_AND_ASSIGN(double stale, engine.QueryStale("visitView", q));
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh, engine.ComputeFreshView("visitView"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(fresh, q));
  EXPECT_NEAR(truth, stale + 500, 1e-9);

  SvcQueryOptions opts;
  opts.ratio = 0.3;
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer ans, engine.Query("visitView", q, opts));
  EXPECT_LT(std::fabs(ans.estimate.value - truth),
            std::fabs(stale - truth));
}

TEST(SvcEngineTest, MaintainAllCommitsAndFreshens) {
  SvcEngine engine = MakeEngine();
  for (int i = 0; i < 200; ++i) {
    SVC_ASSERT_OK(engine.InsertRecord(
        "Log", {Value::Int(200000 + i), Value::Int(2)}));
  }
  EXPECT_TRUE(engine.IsStale());
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh, engine.ComputeFreshView("visitView"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(fresh, q));
  SVC_ASSERT_OK(engine.MaintainAll());
  EXPECT_FALSE(engine.IsStale());
  SVC_ASSERT_OK_AND_ASSIGN(double now, engine.QueryStale("visitView", q));
  EXPECT_NEAR(now, truth, 1e-9);
}

TEST(SvcEngineTest, AutoModeSelectsEstimator) {
  SvcEngine engine = MakeEngine();
  // Tiny staleness: policy should choose CORR.
  SVC_ASSERT_OK(engine.InsertRecord("Log", {Value::Int(300000),
                                            Value::Int(1)}));
  SvcQueryOptions opts;
  opts.auto_mode = true;
  opts.ratio = 0.3;
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer ans, engine.Query("visitView", q, opts));
  EXPECT_EQ(static_cast<int>(ans.mode_used),
            static_cast<int>(EstimatorMode::kCorr));
}

TEST(PolicyTest, HeavyChangeFlipsToAqp) {
  // Construct samples where the stale values are uncorrelated with fresh.
  Table stale(Schema({{"", "id", ValueType::kInt},
                      {"", "val", ValueType::kDouble}}));
  Table fresh = stale;
  SVC_ASSERT_OK(stale.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(fresh.SetPrimaryKey({"id"}));
  Rng rng(137);
  for (int i = 0; i < 3000; ++i) {
    SVC_ASSERT_OK(stale.Insert({Value::Int(i),
                                Value::Double(rng.Uniform(0, 10))}));
    SVC_ASSERT_OK(fresh.Insert({Value::Int(i),
                                Value::Double(rng.Uniform(0, 10))}));
  }
  CorrespondingSamples s;
  s.ratio = 0.2;
  s.key_columns = {"id"};
  s.stale = stale;
  s.fresh = fresh;
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(PolicyDecision d, ChooseEstimator(s, q));
  EXPECT_EQ(static_cast<int>(d.mode), static_cast<int>(EstimatorMode::kAqp));
}

TEST(PolicyTest, IdenticalViewsChooseCorr) {
  Table t(Schema({{"", "id", ValueType::kInt},
                  {"", "val", ValueType::kDouble}}));
  SVC_ASSERT_OK(t.SetPrimaryKey({"id"}));
  Rng rng(139);
  for (int i = 0; i < 500; ++i) {
    SVC_ASSERT_OK(t.Insert({Value::Int(i),
                            Value::Double(rng.Uniform(0, 10))}));
  }
  CorrespondingSamples s;
  s.ratio = 0.5;
  s.key_columns = {"id"};
  s.stale = t;
  s.fresh = t;
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
  SVC_ASSERT_OK_AND_ASSIGN(PolicyDecision d, ChooseEstimator(s, q));
  EXPECT_EQ(static_cast<int>(d.mode), static_cast<int>(EstimatorMode::kCorr));
  EXPECT_NEAR(d.var_stale, d.cov, 1e-9);
}

TEST(MinMaxTest, MaxCorrectionAndCantelli) {
  Table stale(Schema({{"", "id", ValueType::kInt},
                      {"", "val", ValueType::kDouble}}));
  Table fresh = stale;
  SVC_ASSERT_OK(stale.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(fresh.SetPrimaryKey({"id"}));
  Rng rng(149);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.Uniform(0, 100);
    SVC_ASSERT_OK(stale.Insert({Value::Int(i), Value::Double(v)}));
    // Every value shifted up by 5 in the fresh view.
    SVC_ASSERT_OK(fresh.Insert({Value::Int(i), Value::Double(v + 5)}));
  }
  CorrespondingSamples s;
  s.ratio = 0.2;
  s.key_columns = {"id"};
  Table ss(stale.schema()), fs(fresh.schema());
  for (size_t i = 0; i < stale.NumRows(); ++i) {
    if (HashInSample(stale.EncodedKey(i), 0.2, HashFamily::kFnv1a)) {
      ss.AppendUnchecked(stale.row(i));
      fs.AppendUnchecked(fresh.row(i));
    }
  }
  SVC_ASSERT_OK(ss.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(fs.SetPrimaryKey({"id"}));
  s.stale = std::move(ss);
  s.fresh = std::move(fs);

  AggregateQuery q{AggFunc::kMax, Expr::Col("val"), nullptr};
  SVC_ASSERT_OK_AND_ASSIGN(MinMaxEstimate e, SvcMaxEstimate(stale, s, q));
  SVC_ASSERT_OK_AND_ASSIGN(double stale_max,
                           ExactAggregate(stale, {AggFunc::kMax,
                                                  Expr::Col("val"), nullptr}));
  // The uniform +5 shift is recovered exactly by the paired-difference rule.
  EXPECT_NEAR(e.value, stale_max + 5, 1e-9);
  EXPECT_GT(e.tail_probability, 0.0);
  EXPECT_LT(e.tail_probability, 0.3);  // ~0.25 for uniform[0,100]
}

TEST(MinMaxTest, MinCorrection) {
  Table stale(Schema({{"", "id", ValueType::kInt},
                      {"", "val", ValueType::kDouble}}));
  Table fresh = stale;
  SVC_ASSERT_OK(stale.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(fresh.SetPrimaryKey({"id"}));
  for (int i = 0; i < 1000; ++i) {
    SVC_ASSERT_OK(stale.Insert({Value::Int(i), Value::Double(i * 0.1 + 3)}));
    SVC_ASSERT_OK(fresh.Insert({Value::Int(i), Value::Double(i * 0.1)}));
  }
  CorrespondingSamples s;
  s.ratio = 0.3;
  s.key_columns = {"id"};
  Table ss(stale.schema()), fs(fresh.schema());
  for (size_t i = 0; i < stale.NumRows(); ++i) {
    if (HashInSample(stale.EncodedKey(i), 0.3, HashFamily::kFnv1a)) {
      ss.AppendUnchecked(stale.row(i));
      fs.AppendUnchecked(fresh.row(i));
    }
  }
  SVC_ASSERT_OK(ss.SetPrimaryKey({"id"}));
  SVC_ASSERT_OK(fs.SetPrimaryKey({"id"}));
  s.stale = std::move(ss);
  s.fresh = std::move(fs);
  AggregateQuery q{AggFunc::kMin, Expr::Col("val"), nullptr};
  SVC_ASSERT_OK_AND_ASSIGN(MinMaxEstimate e, SvcMinEstimate(stale, s, q));
  EXPECT_NEAR(e.value, 0.0, 1e-9);  // 3 (stale min) + (-3) correction
}

TEST(SelectCleanTest, RepairsSelection) {
  SvcEngine engine = MakeEngine(43);
  // Make video 1 cross the threshold and delete all visits to video 3.
  for (int i = 0; i < 300; ++i) {
    SVC_ASSERT_OK(engine.InsertRecord(
        "Log", {Value::Int(400000 + i), Value::Int(1)}));
  }
  SVC_ASSERT_OK_AND_ASSIGN(const Table* log, engine.db()->GetTable("Log"));
  DeltaSet dels;
  for (const auto& r : log->rows()) {
    if (r[1].AsInt() == 3) {
      SVC_ASSERT_OK(dels.AddDelete(*engine.db(), "Log", r));
    }
  }
  SVC_ASSERT_OK(engine.IngestDeltas(std::move(dels)));

  SVC_ASSERT_OK_AND_ASSIGN(const MaterializedView* view,
                           engine.GetView("visitView"));
  CleanOptions copts{1.0, HashFamily::kFnv1a};  // full "sample": exact repair
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples samples,
      CleanViewSample(*view, engine.pending(), *engine.db(), copts));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* stale,
                           engine.db()->GetTable("visitView"));
  ExprPtr pred = Expr::Gt(Expr::Col("visitCount"), Expr::LitInt(0));
  SVC_ASSERT_OK_AND_ASSIGN(CleanedSelect cleaned,
                           SvcCleanSelect(*stale, samples, pred));
  // With m = 1 the repaired selection equals the fresh view selection.
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh, engine.ComputeFreshView("visitView"));
  size_t fresh_sel = 0;
  ExprPtr fp = pred->Clone();
  SVC_ASSERT_OK(fp->Bind(fresh.schema()));
  for (const auto& r : fresh.rows()) {
    if (fp->Eval(r).IsTrue()) ++fresh_sel;
  }
  EXPECT_EQ(cleaned.rows.NumRows(), fresh_sel);
  EXPECT_GT(cleaned.updated_rows.value, 0);
  EXPECT_GT(cleaned.deleted_rows.value, 0);
}

TEST(SelectCleanTest, SampledRepairBoundsChangeCounts) {
  SvcEngine engine = MakeEngine(47);
  for (int i = 0; i < 400; ++i) {
    SVC_ASSERT_OK(engine.InsertRecord(
        "Log",
        {Value::Int(500000 + i), Value::Int(1 + i % 50)}));
  }
  SVC_ASSERT_OK_AND_ASSIGN(const MaterializedView* view,
                           engine.GetView("visitView"));
  CleanOptions copts{0.4, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples samples,
      CleanViewSample(*view, engine.pending(), *engine.db(), copts));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* stale,
                           engine.db()->GetTable("visitView"));
  SVC_ASSERT_OK_AND_ASSIGN(CleanedSelect cleaned,
                           SvcCleanSelect(*stale, samples, nullptr));
  // Truth: number of updated view rows.
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh, engine.ComputeFreshView("visitView"));
  size_t updated_truth = 0;
  for (size_t i = 0; i < stale->NumRows(); ++i) {
    auto f = fresh.FindByEncodedKey(stale->EncodedKey(i));
    if (!f.ok()) continue;
    bool same = true;
    for (size_t c = 0; c < stale->row(i).size() && same; ++c) {
      same = stale->row(i)[c] == fresh.row(*f)[c];
    }
    if (!same) ++updated_truth;
  }
  EXPECT_TRUE(cleaned.updated_rows.Covers(static_cast<double>(updated_truth)))
      << cleaned.updated_rows.value << " truth=" << updated_truth;
}

TEST(OutlierIndexTest, TopKThresholdAndEviction) {
  Database db = MakeLogVideoDb();
  OutlierIndexSpec spec;
  spec.base_relation = "Video";
  spec.attribute = "duration";
  spec.capacity = 2;
  DeltaSet none;
  SVC_ASSERT_OK_AND_ASSIGN(OutlierIndex index,
                           OutlierIndex::Build(db, none, spec));
  // Durations 0.5..2.5; top-2 threshold = 2.0, records = {2.0, 2.5}.
  EXPECT_DOUBLE_EQ(index.threshold(), 2.0);
  EXPECT_EQ(index.size(), 2u);
}

TEST(OutlierIndexTest, UpdateStreamFeedsIndex) {
  Database db = MakeLogVideoDb();
  DeltaSet deltas;
  SVC_ASSERT_OK(deltas.AddInsert(
      db, "Video",
      {Value::Int(50), Value::Int(999), Value::Double(100.0)}));
  OutlierIndexSpec spec;
  spec.base_relation = "Video";
  spec.attribute = "duration";
  spec.capacity = 3;
  spec.threshold = 2.4;
  SVC_ASSERT_OK_AND_ASSIGN(OutlierIndex index,
                           OutlierIndex::Build(db, deltas, spec));
  // Base has one record >= 2.4 (2.5) plus the inserted 100.0.
  EXPECT_EQ(index.size(), 2u);
}

TEST(OutlierEstimationTest, SkewedSumImproves) {
  // Zipf-skewed per-video visit counts: a handful of huge groups dominate
  // the total. The outlier index pins them, shrinking both error and CI.
  SvcEngine engine = MakeEngine(53, 80, 12000);
  for (int i = 0; i < 1500; ++i) {
    SVC_ASSERT_OK(engine.InsertRecord(
        "Log", {Value::Int(700000 + i), Value::Int(1 + i % 8)}));
  }
  SVC_ASSERT_OK_AND_ASSIGN(const MaterializedView* view,
                           engine.GetView("visitView"));

  OutlierIndexSpec spec;
  spec.base_relation = "Log";
  spec.attribute = "videoId";  // low ids are the hot groups under Zipf
  spec.capacity = 400;
  spec.threshold = -1e18;  // index by recency of heat instead: see below
  // Indexing videoId directly is not meaningful; instead index the hot
  // groups by thresholding small ids via a transform-free criterion:
  // use threshold so that videoId >= threshold keeps all (we then rely on
  // capacity+top-k to retain the largest videoIds). For a meaningful test
  // use duration on Video as the skew proxy below instead.
  spec.base_relation = "Video";
  spec.attribute = "duration";
  spec.capacity = 10;
  spec.threshold.reset();
  SVC_ASSERT_OK_AND_ASSIGN(
      OutlierIndex index,
      OutlierIndex::Build(*engine.db(), engine.pending(), spec));
  SVC_ASSERT_OK_AND_ASSIGN(
      OutlierIndex::ViewOutliers outliers,
      index.PushUpToView(*view, engine.pending(), engine.db()));
  ASSERT_TRUE(outliers.eligible);
  EXPECT_GT(outliers.fresh.NumRows(), 0u);

  CleanOptions copts{0.1, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples samples,
      CleanViewSample(*view, engine.pending(), *engine.db(), copts));
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("totalDur"));
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh, engine.ComputeFreshView("visitView"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(fresh, q));

  SVC_ASSERT_OK_AND_ASSIGN(Estimate plain, SvcAqpEstimate(samples, q));
  SVC_ASSERT_OK_AND_ASSIGN(
      Estimate with_out,
      SvcAqpEstimateWithOutliers(samples, outliers, q));
  // The outlier-merged estimate must have a tighter interval.
  EXPECT_LE(with_out.HalfWidth(), plain.HalfWidth());
  EXPECT_TRUE(with_out.Covers(truth) ||
              std::fabs(with_out.value - truth) <
                  std::fabs(plain.value - truth) + 1e-9);
}

TEST(OutlierEstimationTest, CorrMergeIsConsistent) {
  SvcEngine engine = MakeEngine(59, 40, 6000);
  for (int i = 0; i < 800; ++i) {
    SVC_ASSERT_OK(engine.InsertRecord(
        "Log", {Value::Int(800000 + i), Value::Int(1 + i % 35)}));
  }
  SVC_ASSERT_OK_AND_ASSIGN(const MaterializedView* view,
                           engine.GetView("visitView"));
  OutlierIndexSpec spec{"Video", "duration", 8, std::nullopt};
  SVC_ASSERT_OK_AND_ASSIGN(
      OutlierIndex index,
      OutlierIndex::Build(*engine.db(), engine.pending(), spec));
  SVC_ASSERT_OK_AND_ASSIGN(
      OutlierIndex::ViewOutliers outliers,
      index.PushUpToView(*view, engine.pending(), engine.db()));
  ASSERT_TRUE(outliers.eligible);
  CleanOptions copts{0.15, HashFamily::kFnv1a};
  SVC_ASSERT_OK_AND_ASSIGN(
      CorrespondingSamples samples,
      CleanViewSample(*view, engine.pending(), *engine.db(), copts));
  SVC_ASSERT_OK_AND_ASSIGN(const Table* stale,
                           engine.db()->GetTable("visitView"));
  AggregateQuery q = AggregateQuery::Sum(Expr::Col("visitCount"));
  SVC_ASSERT_OK_AND_ASSIGN(Table fresh, engine.ComputeFreshView("visitView"));
  SVC_ASSERT_OK_AND_ASSIGN(double truth, ExactAggregate(fresh, q));
  SVC_ASSERT_OK_AND_ASSIGN(
      Estimate est,
      SvcCorrEstimateWithOutliers(*stale, samples, outliers, q));
  SVC_ASSERT_OK_AND_ASSIGN(double stale_ans, ExactAggregate(*stale, q));
  // The merged estimate is bounded by its interval and improves on the
  // stale answer.
  EXPECT_TRUE(est.Covers(truth)) << est.value << " truth=" << truth;
  EXPECT_LT(std::fabs(est.value - truth), std::fabs(stale_ans - truth));
}

}  // namespace
}  // namespace svc
