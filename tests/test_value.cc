#include <gtest/gtest.h>

#include "relational/value.h"

namespace svc {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_EQ(Value::Int(-7), Value::Int(-7));
  EXPECT_NE(Value::Int(3), Value::String("3"));
}

TEST(ValueTest, NullEquality) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_NE(Value::Int(0), Value::Null());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_LT(Value::Double(-0.5), Value::Int(0));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // NULL sorts first; numerics before strings.
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Int(100), Value::String(""));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, BoolHelpers) {
  EXPECT_TRUE(Value::Bool(true).IsTrue());
  EXPECT_FALSE(Value::Bool(false).IsTrue());
  EXPECT_FALSE(Value::Null().IsTrue());
  EXPECT_TRUE(Value::Int(42).IsTrue());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueEncodingTest, DistinctValuesDistinctEncodings) {
  auto enc = [](const Value& v) {
    std::string s;
    v.EncodeTo(&s);
    return s;
  };
  EXPECT_NE(enc(Value::Int(1)), enc(Value::Int(2)));
  EXPECT_NE(enc(Value::Int(1)), enc(Value::Null()));
  EXPECT_NE(enc(Value::String("1")), enc(Value::Int(1)));
  EXPECT_NE(enc(Value::String("a")), enc(Value::String("ab")));
  EXPECT_NE(enc(Value::Double(1.5)), enc(Value::Double(2.5)));
}

TEST(ValueEncodingTest, IntegralDoubleEncodesAsInt) {
  // A key that flows through arithmetic (int -> double) must hash
  // identically; the η operator depends on this.
  std::string a, b;
  Value::Int(42).EncodeTo(&a);
  Value::Double(42.0).EncodeTo(&b);
  EXPECT_EQ(a, b);
  std::string c;
  Value::Double(42.5).EncodeTo(&c);
  EXPECT_NE(a, c);
}

TEST(ValueEncodingTest, EncodingIsPrefixFree) {
  // Multi-column keys must not collide by concatenation: ("a","b") vs
  // ("ab","").
  Row r1 = {Value::String("a"), Value::String("b")};
  Row r2 = {Value::String("ab"), Value::String("")};
  EXPECT_NE(EncodeRowKey(r1, {0, 1}), EncodeRowKey(r2, {0, 1}));
}

TEST(ValueEncodingTest, RowKeySubsetsColumns) {
  Row r = {Value::Int(1), Value::String("x"), Value::Double(2.5)};
  EXPECT_EQ(EncodeRowKey(r, {0}), EncodeRowKey(r, {0}));
  EXPECT_NE(EncodeRowKey(r, {0}), EncodeRowKey(r, {2}));
  EXPECT_NE(EncodeRowKey(r, {0, 1}), EncodeRowKey(r, {1, 0}));
}

}  // namespace
}  // namespace svc
