// Randomized differential harness (ISSUE 4, extended by ISSUE 5): generate
// random schemas, committed loads, delta batches, and SVC queries; run them
// through the SQL serving path on a *shared* snapshot-isolated engine,
// through the direct C++ Query/QueryGrouped API on a *private* engine, and
// through a third private engine with the cleaned-sample cache disabled,
// and assert the answers are bit-identical — per value, CI bound,
// estimator mode, and sample count — at num_threads ∈ {1, 4} and across
// snapshot epochs (before and after the maintenance commit). The first two
// engines serve from the cache (the shared one advancing it across ingest
// commits), so every assertion doubles as a cache-on vs cache-off identity
// check on the ingest→query→refresh loop.
//
// Every trial is deterministic from its seed; a failure's SCOPED_TRACE
// prints `seed=N round=R query="..."`, so a repro is
//   ./test_differential --gtest_filter='*Differential*'   (seed N fails
//   identically every run; edit kSeeds to bisect a single trial).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sharded_engine.h"
#include "core/shared_engine.h"
#include "core/svc.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace svc {
namespace {

/// %.17g: enough digits that parsing the literal back yields the exact
/// same double, so the SQL path and the direct path see identical values.
std::string Lit17(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One randomly generated workload: a fact table F(id, g, v), optionally a
/// dimension D(g, label) joined in the view, committed rows, and the view.
struct Workload {
  bool join_view = false;
  int groups = 4;
  std::vector<Row> fact_rows;               // committed F rows, in order
  std::map<int64_t, Row> committed_by_id;   // for DELETE mirroring
  std::string view_sql;                     // CREATE ... AS <view_sql>
};

Workload GenerateWorkload(Rng* rng) {
  Workload w;
  w.join_view = rng->UniformInt(0, 1) == 1;
  w.groups = static_cast<int>(rng->UniformInt(3, 6));
  const int64_t n = rng->UniformInt(40, 120);
  for (int64_t id = 0; id < n; ++id) {
    Row r{Value::Int(id), Value::Int(rng->UniformInt(1, w.groups)),
          Value::Double(static_cast<double>(rng->UniformInt(0, 1000)) / 16.0)};
    w.committed_by_id[id] = r;
    w.fact_rows.push_back(std::move(r));
  }
  w.view_sql = w.join_view
                   ? "SELECT F.g, COUNT(1) AS c, SUM(F.v) AS sv "
                     "FROM F, D WHERE F.g = D.g GROUP BY F.g"
                   : "SELECT g, COUNT(1) AS c, SUM(v) AS sv "
                     "FROM F GROUP BY g";
  return w;
}

Schema FactSchema() {
  return Schema({{"", "id", ValueType::kInt},
                 {"", "g", ValueType::kInt},
                 {"", "v", ValueType::kDouble}});
}

Schema DimSchema() {
  return Schema({{"", "g", ValueType::kInt}, {"", "label", ValueType::kInt}});
}

/// The dimension table has one row per group (so the join is lossless and
/// both view templates cover every fact row).
std::vector<Row> DimRows(int groups) {
  std::vector<Row> rows;
  for (int64_t g = 1; g <= groups; ++g) {
    rows.push_back({Value::Int(g), Value::Int(100 + g)});
  }
  return rows;
}

/// One random SVC query: SQL text plus the equivalent direct call.
struct RandomQuery {
  std::string sql;        // full statement incl. WITH SVC(...)
  AggregateQuery direct;  // the same query for SvcEngine::Query
  bool grouped = false;
  SvcQueryOptions opts;   // ratio/mode for the direct call
};

RandomQuery GenerateQuery(Rng* rng) {
  RandomQuery q;
  // Aggregate: sum/count/avg over the view's visible columns, with an
  // occasional median to push the (seeded) bootstrap through both paths.
  const int func = static_cast<int>(rng->UniformInt(0, 7));
  std::string agg_sql;
  const char* attr = rng->UniformInt(0, 1) == 0 ? "c" : "sv";
  if (func <= 2) {
    agg_sql = "COUNT(1)";
    q.direct.func = AggFunc::kCountStar;
  } else if (func <= 4) {
    agg_sql = std::string("SUM(") + attr + ")";
    q.direct.func = AggFunc::kSum;
    q.direct.attr = Expr::Col(attr);
  } else if (func <= 6) {
    agg_sql = std::string("AVG(") + attr + ")";
    q.direct.func = AggFunc::kAvg;
    q.direct.attr = Expr::Col(attr);
  } else {
    agg_sql = std::string("MEDIAN(") + attr + ")";
    q.direct.func = AggFunc::kMedian;
    q.direct.attr = Expr::Col(attr);
  }
  // Predicate: none, or an inequality on a visible column.
  std::string where;
  const int pred = static_cast<int>(rng->UniformInt(0, 2));
  if (pred == 1) {
    const int64_t lit = rng->UniformInt(1, 20);
    where = " WHERE c > " + std::to_string(lit);
    q.direct.predicate = Expr::Gt(Expr::Col("c"), Expr::LitInt(lit));
  } else if (pred == 2) {
    const double lit =
        static_cast<double>(rng->UniformInt(0, 16000)) / 16.0;
    where = " WHERE sv <= " + Lit17(lit);
    q.direct.predicate = Expr::Le(Expr::Col("sv"), Expr::LitDouble(lit));
  }
  q.grouped = rng->UniformInt(0, 2) == 0;
  const double ratios[] = {0.25, 0.5, 1.0};
  q.opts.ratio = ratios[rng->UniformInt(0, 2)];
  q.opts.mode = rng->UniformInt(0, 1) == 0 ? EstimatorMode::kAqp
                                           : EstimatorMode::kCorr;
  const char* mode_sql = q.opts.mode == EstimatorMode::kAqp ? "aqp" : "corr";
  const std::string svc = " WITH SVC(ratio=" + Lit17(q.opts.ratio) +
                          ", mode=" + mode_sql + ")";
  if (q.grouped) {
    q.sql = "SELECT g, " + agg_sql + " AS x FROM V" + where + " GROUP BY g" +
            svc;
  } else {
    q.sql = "SELECT " + agg_sql + " AS x FROM V" + where + svc;
  }
  return q;
}

/// Runs one SQL statement, failing the test on error.
SqlResult MustRun(SqlSession* session, const std::string& sql) {
  auto r = session->Execute(sql);
  if (!r.ok()) {
    ADD_FAILURE() << r.status().ToString() << "\nSQL: " << sql;
    return SqlResult();
  }
  return std::move(r).value();
}

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Asserts two SQL results carry the same rows bit-for-bit (doubles by
/// IEEE bit pattern — the shard-invariance contract is bitwise, not
/// approximate).
void ExpectResultsBitIdentical(const SqlResult& got, const SqlResult& want) {
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.mode_used, want.mode_used);
  ASSERT_EQ(got.rows.schema().NumColumns(), want.rows.schema().NumColumns());
  ASSERT_EQ(got.rows.NumRows(), want.rows.NumRows());
  for (size_t i = 0; i < want.rows.NumRows(); ++i) {
    for (size_t c = 0; c < want.rows.schema().NumColumns(); ++c) {
      const Value& g = got.rows.row(i)[c];
      const Value& w = want.rows.row(i)[c];
      ASSERT_EQ(g.type(), w.type()) << "row " << i << " col " << c;
      if (w.type() == ValueType::kDouble) {
        EXPECT_EQ(BitsOf(g.AsDouble()), BitsOf(w.AsDouble()))
            << "row " << i << " col " << c << ": " << g.ToString() << " vs "
            << w.ToString();
      } else {
        EXPECT_TRUE(g == w) << "row " << i << " col " << c << ": "
                            << g.ToString() << " vs " << w.ToString();
      }
    }
  }
}

/// Asserts one estimate row (value, ci_low, ci_high, mode, sample_rows)
/// from the SQL result equals the direct Estimate bit-for-bit.
void ExpectEstimateRowEq(const Row& row, size_t first_col,
                         const Estimate& e, EstimatorMode mode) {
  EXPECT_EQ(row[first_col].AsDouble(), e.value);
  if (e.has_ci) {
    EXPECT_EQ(row[first_col + 1].AsDouble(), e.ci_low);
    EXPECT_EQ(row[first_col + 2].AsDouble(), e.ci_high);
  } else {
    EXPECT_TRUE(row[first_col + 1].is_null());
    EXPECT_TRUE(row[first_col + 2].is_null());
  }
  EXPECT_EQ(row[first_col + 3].AsString(),
            mode == EstimatorMode::kAqp ? "AQP" : "CORR");
  EXPECT_EQ(row[first_col + 4].AsInt(),
            static_cast<int64_t>(e.sample_rows));
}

/// Shard counts the fourth engine config runs at. Every SQL statement is
/// mirrored into one sharded session per count; every query must come back
/// bit-identical to the unsharded shared session at each of them.
constexpr int kShardCounts[] = {1, 2, 4};

/// The differential set under test: the same logical engine state reached
/// through (a) SQL statements on a SharedEngine, (b) direct C++ calls on a
/// private SvcEngine, (c) a cache-off private engine, and (d) scatter-
/// gather ShardedEngine sessions at every count in kShardCounts.
struct EnginePair {
  std::shared_ptr<SharedEngine> shared;
  std::unique_ptr<SqlSession> sql;     // session over `shared`
  std::unique_ptr<SvcEngine> direct;   // private engine (cache on)
  std::unique_ptr<SvcEngine> nocache;  // private engine, cache disabled
  std::vector<std::unique_ptr<SqlSession>> sharded;  // one per kShardCounts
  int64_t next_id = 0;
};

/// Runs one statement on the shared session and every sharded session,
/// returning the shared session's result.
SqlResult RunOnAllSql(EnginePair* p, const std::string& sql) {
  SqlResult r = MustRun(p->sql.get(), sql);
  for (auto& session : p->sharded) MustRun(session.get(), sql);
  return r;
}

EnginePair BuildPair(const Workload& w) {
  EnginePair p;
  // Direct path: tables built in memory, view over the committed state.
  Database db;
  Table fact(FactSchema());
  EXPECT_TRUE(fact.SetPrimaryKey({"id"}).ok());
  for (const Row& r : w.fact_rows) EXPECT_TRUE(fact.Insert(r).ok());
  EXPECT_TRUE(db.CreateTable("F", std::move(fact)).ok());
  Table dim(DimSchema());
  EXPECT_TRUE(dim.SetPrimaryKey({"g"}).ok());
  for (const Row& r : DimRows(w.groups)) EXPECT_TRUE(dim.Insert(r).ok());
  EXPECT_TRUE(db.CreateTable("D", std::move(dim)).ok());
  p.direct = std::make_unique<SvcEngine>(std::move(db));
  PlanPtr def = SqlToPlan(w.view_sql, *p.direct->db()).value();
  EXPECT_TRUE(p.direct->CreateView("V", std::move(def)).ok());
  // The cache-off control: an exact fork that always runs the full
  // cleaning pipeline. Any divergence from `direct` is a cache bug.
  p.nocache = std::make_unique<SvcEngine>(*p.direct);
  p.nocache->set_sample_cache_enabled(false);

  // SQL path: the identical state scripted as statements on a SharedEngine
  // (INSERT queues deltas; REFRESH ALL commits the initial load so the
  // view materializes over the same committed rows, in the same order).
  p.shared = std::make_shared<SharedEngine>(Database());
  p.sql = std::make_unique<SqlSession>(p.shared);
  for (int shards : kShardCounts) {
    p.sharded.push_back(std::make_unique<SqlSession>(EngineHandle::Sharded(
        std::make_shared<ShardedEngine>(Database(), shards))));
  }
  RunOnAllSql(&p,
              "CREATE TABLE F (id INT, g INT, v DOUBLE, PRIMARY KEY (id))");
  RunOnAllSql(&p, "CREATE TABLE D (g INT, label INT, PRIMARY KEY (g))");
  std::string ins = "INSERT INTO F VALUES ";
  for (size_t i = 0; i < w.fact_rows.size(); ++i) {
    const Row& r = w.fact_rows[i];
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(r[0].AsInt()) + ", " +
           std::to_string(r[1].AsInt()) + ", " + Lit17(r[2].AsDouble()) + ")";
  }
  RunOnAllSql(&p, ins);
  std::string dins = "INSERT INTO D VALUES ";
  for (int g = 1; g <= w.groups; ++g) {
    if (g > 1) dins += ", ";
    dins += "(" + std::to_string(g) + ", " + std::to_string(100 + g) + ")";
  }
  RunOnAllSql(&p, dins);
  RunOnAllSql(&p, "REFRESH ALL");
  RunOnAllSql(&p, "CREATE MATERIALIZED VIEW V AS " + w.view_sql);
  p.next_id = static_cast<int64_t>(w.fact_rows.size());
  return p;
}

/// Mirrors one random delta batch into both engines: inserts with fresh
/// ids, deletes of still-committed ids (each id deleted at most once —
/// the SQL session skips re-queued deletes, the direct API would not).
void ApplyRandomDeltas(Rng* rng, const Workload& w, EnginePair* p,
                       std::map<int64_t, Row>* committed) {
  const int64_t n_ins = rng->UniformInt(3, 12);
  std::string ins = "INSERT INTO F VALUES ";
  for (int64_t i = 0; i < n_ins; ++i) {
    Row r{Value::Int(p->next_id++), Value::Int(rng->UniformInt(1, w.groups)),
          Value::Double(static_cast<double>(rng->UniformInt(0, 1000)) / 16.0)};
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(r[0].AsInt()) + ", " +
           std::to_string(r[1].AsInt()) + ", " + Lit17(r[2].AsDouble()) + ")";
    SVC_ASSERT_OK(p->nocache->InsertRecord("F", r));
    SVC_ASSERT_OK(p->direct->InsertRecord("F", std::move(r)));
  }
  RunOnAllSql(p, ins);

  const int64_t n_del = rng->UniformInt(0, 5);
  for (int64_t i = 0; i < n_del && !committed->empty(); ++i) {
    auto it = committed->begin();
    std::advance(it, static_cast<size_t>(rng->UniformInt(
                         0, static_cast<int64_t>(committed->size()) - 1)));
    RunOnAllSql(p, "DELETE FROM F WHERE id = " + std::to_string(it->first));
    SVC_ASSERT_OK(p->direct->DeleteRecord("F", it->second));
    SVC_ASSERT_OK(p->nocache->DeleteRecord("F", it->second));
    committed->erase(it);
  }
}

/// Runs `q` through both paths at `num_threads` and asserts bit-identity.
void CheckQuery(const RandomQuery& q, EnginePair* p, int num_threads) {
  SCOPED_TRACE("threads=" + std::to_string(num_threads) +
               " query=\"" + q.sql + "\"");
  SvcQueryOptions opts = q.opts;
  opts.exec.num_threads = num_threads;
  opts.estimator.num_threads = num_threads;
  // The session inherits thread counts via its defaults; WITH SVC(...)
  // overrides ratio/mode per query, exactly like the direct opts.
  p->sql->default_svc_options() = opts;

  SqlResult got = MustRun(p->sql.get(), q.sql);
  if (got.kind != SqlResultKind::kEstimate) return;  // MustRun already failed
  // The fourth config: the same query on the scatter-gather sessions must
  // reproduce the unsharded answer bit-for-bit at every shard count.
  for (size_t si = 0; si < p->sharded.size(); ++si) {
    SCOPED_TRACE("shards=" + std::to_string(kShardCounts[si]));
    p->sharded[si]->default_svc_options() = opts;
    SqlResult sharded_got = MustRun(p->sharded[si].get(), q.sql);
    ExpectResultsBitIdentical(sharded_got, got);
  }
  if (!q.grouped) {
    SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer want, p->direct->Query("V", q.direct,
                                                              opts));
    ASSERT_EQ(got.rows.NumRows(), 1u);
    EXPECT_EQ(got.mode_used, want.mode_used);
    ExpectEstimateRowEq(got.rows.row(0), 0, want.estimate, want.mode_used);
    // Cache-off control: the full cleaning pipeline, bit-for-bit.
    SVC_ASSERT_OK_AND_ASSIGN(SvcAnswer cold,
                             p->nocache->Query("V", q.direct, opts));
    EXPECT_EQ(cold.mode_used, want.mode_used);
    EXPECT_EQ(cold.estimate.value, want.estimate.value);
    EXPECT_EQ(cold.estimate.ci_low, want.estimate.ci_low);
    EXPECT_EQ(cold.estimate.ci_high, want.estimate.ci_high);
    EXPECT_EQ(cold.estimate.sample_rows, want.estimate.sample_rows);
    return;
  }
  SVC_ASSERT_OK_AND_ASSIGN(
      SvcGroupedAnswer want,
      p->direct->QueryGrouped("V", {"g"}, q.direct, opts));
  SVC_ASSERT_OK_AND_ASSIGN(
      SvcGroupedAnswer cold,
      p->nocache->QueryGrouped("V", {"g"}, q.direct, opts));
  EXPECT_EQ(cold.mode_used, want.mode_used);
  ASSERT_EQ(cold.result.group_keys.size(), want.result.group_keys.size());
  for (size_t k = 0; k < want.result.group_keys.size(); ++k) {
    EXPECT_TRUE(cold.result.group_keys[k][0] == want.result.group_keys[k][0]);
    EXPECT_EQ(cold.result.estimates[k].value, want.result.estimates[k].value);
    EXPECT_EQ(cold.result.estimates[k].ci_low,
              want.result.estimates[k].ci_low);
    EXPECT_EQ(cold.result.estimates[k].ci_high,
              want.result.estimates[k].ci_high);
    EXPECT_EQ(cold.result.estimates[k].sample_rows,
              want.result.estimates[k].sample_rows);
  }
  ASSERT_EQ(got.rows.NumRows(), want.result.group_keys.size());
  // The SQL result is sorted by group key; match each row to its group.
  for (size_t i = 0; i < got.rows.NumRows(); ++i) {
    const Row& row = got.rows.row(i);
    size_t gi = want.result.group_keys.size();
    for (size_t k = 0; k < want.result.group_keys.size(); ++k) {
      if (want.result.group_keys[k][0] == row[0]) {
        gi = k;
        break;
      }
    }
    ASSERT_LT(gi, want.result.group_keys.size())
        << "group " << row[0].ToString() << " missing from the direct answer";
    ExpectEstimateRowEq(row, 1, want.result.estimates[gi], want.mode_used);
  }
}

constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8, 11, 42};

TEST(DifferentialTest, SqlOnSharedEngineMatchesDirectPrivateEngine) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Workload w = GenerateWorkload(&rng);
    EnginePair pair = BuildPair(w);
    std::map<int64_t, Row> committed = w.committed_by_id;

    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round));
      ApplyRandomDeltas(&rng, w, &pair, &committed);
      const uint64_t stale_epoch = pair.shared->epoch();
      for (int i = 0; i < 4; ++i) {
        RandomQuery q = GenerateQuery(&rng);
        for (int threads : {1, 4}) CheckQuery(q, &pair, threads);
      }
      EXPECT_EQ(pair.shared->epoch(), stale_epoch)
          << "reads must not publish new engine versions";

      // Maintenance commit on every path: a new snapshot epoch. Queries
      // must stay bit-identical against the fresh state too.
      RunOnAllSql(&pair, "REFRESH ALL");
      SVC_ASSERT_OK(pair.direct->MaintainAll());
      SVC_ASSERT_OK(pair.nocache->MaintainAll());
      EXPECT_EQ(pair.shared->epoch(), stale_epoch + 1);
      for (int i = 0; i < 2; ++i) {
        RandomQuery q = GenerateQuery(&rng);
        for (int threads : {1, 4}) CheckQuery(q, &pair, threads);
      }
    }
  }
}

}  // namespace
}  // namespace svc
