#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace svc {
namespace {

TEST(ThreadPoolTest, RunAllCompletesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, RunAllPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(pool.RunAll(std::move(tasks)), std::runtime_error);
  // Remaining tasks still ran; the batch drains before rethrowing.
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back([&total] { total.fetch_add(1); });
    }
    pool.RunAll(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  // Destruction drains the queue before joining the workers.
  // (pool goes out of scope at the end of this test body)
  while (count.load() < 10) std::this_thread::yield();
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelForTest, CoversEveryChunkExactlyOnce) {
  const size_t kChunks = 37;
  std::vector<std::atomic<int>> hits(kChunks);
  for (auto& h : hits) h.store(0);
  ParallelFor(8, kChunks, [&](size_t c) { hits[c].fetch_add(1); });
  for (size_t c = 0; c < kChunks; ++c) {
    EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ParallelForTest, RunsInlineWithOneThread) {
  // num_threads = 1 must not touch the shared pool; chunk bodies run on
  // the calling thread in chunk order.
  std::vector<size_t> order;
  ParallelFor(1, 5, [&](size_t c) { order.push_back(c); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(4, 16,
                  [&](size_t c) {
                    if (c == 7) throw std::runtime_error("chunk 7");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, NestedBatchesDoNotDeadlock) {
  // A chunk body that itself runs a ParallelFor must complete even when
  // the shared pool is saturated (callers participate in their batches).
  std::atomic<int> inner{0};
  ParallelFor(4, 4, [&](size_t) {
    ParallelFor(4, 4, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 16);
}

TEST(DeterministicChunksTest, DependsOnlyOnInputSize) {
  // The decomposition is what guarantees bit-identical parallel results:
  // it must never vary with thread count, only with n.
  EXPECT_EQ(DeterministicChunks(0, 4096), 1u);
  EXPECT_EQ(DeterministicChunks(4095, 4096), 1u);
  EXPECT_EQ(DeterministicChunks(8192, 4096), 2u);
  EXPECT_EQ(DeterministicChunks(100000, 4096), 24u);
  // Clamped to max_chunks.
  EXPECT_EQ(DeterministicChunks(1u << 30, 4096, 64), 64u);
}

TEST(DeterministicChunksTest, ChunkBoundsPartitionTheRange) {
  for (size_t n : {0u, 1u, 7u, 100u, 4097u}) {
    for (size_t chunks : {1u, 2u, 3u, 8u}) {
      size_t covered = 0;
      size_t prev_end = 0;
      for (size_t c = 0; c < chunks; ++c) {
        auto [begin, end] = ChunkBounds(n, chunks, c);
        EXPECT_EQ(begin, prev_end);
        EXPECT_LE(begin, end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ResolveThreadsTest, ZeroMeansHardware) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(8), 8);
}

}  // namespace
}  // namespace svc
